#ifndef ROADNET_TESTS_FUZZ_FUZZ_MAIN_H_
#define ROADNET_TESTS_FUZZ_FUZZ_MAIN_H_

// Shared driver for the fuzz harnesses (see check.sh `fuzz` stage).
//
// Built with Clang's libFuzzer (-fsanitize=fuzzer defines
// ROADNET_FUZZ_LIBFUZZER) the sanitizer runtime provides main() and
// this header contributes only the declarations. Everywhere else — GCC
// hosts have no libFuzzer — it provides a main() that
//
//   * replays every corpus input named on the command line (files, or
//     directories scanned non-recursively) through
//     LLVMFuzzerTestOneInput,
//   * optionally runs a deterministic SplitMix64 mutation sweep over
//     those inputs (--mutate N applies N mutants per input), and
//   * regenerates the checked-in seed corpus (--write-corpus DIR).
//
// The harness logic is therefore exercised on every host; the 30-second
// libFuzzer run is a strict superset available when clang is installed.

#include <cstddef>
#include <cstdint>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace roadnet::fuzz {
// Implemented by each harness: writes its seed inputs (real encoded
// frames, plus a few deliberately broken ones) into `dir`.
void WriteSeedCorpus(const std::string& dir);
}  // namespace roadnet::fuzz

#ifndef ROADNET_FUZZ_LIBFUZZER

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <vector>

#include "util/rng.h"

namespace roadnet::fuzz {
namespace {

void RunOne(const std::string& bytes) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
}

// One deterministic mutant: flip, truncate, extend, or overwrite a run.
std::string Mutate(const std::string& input, Rng* rng) {
  std::string m = input;
  switch (rng->NextBelow(4)) {
    case 0:  // bit flip
      if (!m.empty()) {
        m[rng->NextBelow(m.size())] ^=
            static_cast<char>(1u << rng->NextBelow(8));
      }
      break;
    case 1:  // truncate
      m.resize(m.empty() ? 0 : rng->NextBelow(m.size()));
      break;
    case 2:  // extend with random bytes
      for (uint64_t i = rng->NextBelow(16) + 1; i > 0; --i) {
        m.push_back(static_cast<char>(rng->NextBelow(256)));
      }
      break;
    default:  // overwrite a short run
      if (!m.empty()) {
        size_t at = rng->NextBelow(m.size());
        for (size_t i = at; i < m.size() && i < at + 8; ++i) {
          m[i] = static_cast<char>(rng->NextBelow(256));
        }
      }
      break;
  }
  return m;
}

int FallbackMain(int argc, char** argv) {
  std::vector<std::string> inputs;
  uint64_t mutate = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--write-corpus" && i + 1 < argc) {
      const std::string dir = argv[++i];
      std::filesystem::create_directories(dir);
      WriteSeedCorpus(dir);
      std::printf("seed corpus written to %s\n", dir.c_str());
      return 0;
    }
    if (arg == "--mutate" && i + 1 < argc) {
      mutate = std::strtoull(argv[++i], nullptr, 10);
      continue;
    }
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path().string());
      }
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--mutate N] [--write-corpus DIR] "
                 "CORPUS_FILE_OR_DIR...\n",
                 argv[0]);
    return 2;
  }
  Rng rng(0x526f61644e6574ULL);  // fixed seed: replays are reproducible
  size_t executed = 0;
  for (const std::string& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 2;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    RunOne(bytes);
    ++executed;
    for (uint64_t i = 0; i < mutate; ++i) {
      RunOne(Mutate(bytes, &rng));
      ++executed;
    }
  }
  std::printf("replayed %zu inputs (%zu corpus, %llu mutants each)\n",
              executed, inputs.size(),
              static_cast<unsigned long long>(mutate));
  return 0;
}

}  // namespace
}  // namespace roadnet::fuzz

int main(int argc, char** argv) {
  return roadnet::fuzz::FallbackMain(argc, argv);
}

#endif  // ROADNET_FUZZ_LIBFUZZER

#endif  // ROADNET_TESTS_FUZZ_FUZZ_MAIN_H_
