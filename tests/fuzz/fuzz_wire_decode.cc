// Fuzz harness for the wire codec (src/server/wire.*): every decoder
// must reject or accept arbitrary bytes without reading out of bounds,
// and every accepted message must survive an encode/decode round trip
// with its fields intact. Violations trap (libFuzzer and the fallback
// replay driver both turn that into a crash with the offending input).

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>

#include "server/wire.h"
#include "tests/fuzz/fuzz_main.h"

namespace roadnet {
namespace {

#define FUZZ_CHECK(cond) \
  do {                   \
    if (!(cond)) __builtin_trap(); \
  } while (0)

void CheckQueryRequest(const std::string& body, bool v2) {
  auto req = v2 ? wire::DecodeQueryRequestV2(body)
                : wire::DecodeQueryRequest(body);
  if (!req) return;
  const std::string re =
      v2 ? wire::EncodeQueryRequestV2(*req) : wire::EncodeQueryRequest(*req);
  auto again =
      v2 ? wire::DecodeQueryRequestV2(re) : wire::DecodeQueryRequest(re);
  FUZZ_CHECK(again.has_value());
  FUZZ_CHECK(again->technique == req->technique);
  FUZZ_CHECK(again->kind == req->kind);
  FUZZ_CHECK(again->source == req->source);
  FUZZ_CHECK(again->target == req->target);
  FUZZ_CHECK(again->deadline_micros == req->deadline_micros);
  if (v2) FUZZ_CHECK(again->request_id == req->request_id);
}

void CheckQueryResponse(const std::string& body, bool v2) {
  auto resp = v2 ? wire::DecodeQueryResponseV2(body)
                 : wire::DecodeQueryResponse(body);
  if (!resp) return;
  const std::string re = v2 ? wire::EncodeQueryResponseV2(*resp)
                            : wire::EncodeQueryResponse(*resp);
  auto again =
      v2 ? wire::DecodeQueryResponseV2(re) : wire::DecodeQueryResponse(re);
  FUZZ_CHECK(again.has_value());
  FUZZ_CHECK(again->status == resp->status);
  FUZZ_CHECK(again->distance == resp->distance);
  FUZZ_CHECK(again->server_latency_ns == resp->server_latency_ns);
  FUZZ_CHECK(again->path == resp->path);
  if (v2) FUZZ_CHECK(again->request_id == resp->request_id);
}

void CheckStatsResponse(const std::string& body) {
  auto stats = wire::DecodeStatsResponse(body);
  if (!stats) return;
  auto again = wire::DecodeStatsResponse(wire::EncodeStatsResponse(*stats));
  FUZZ_CHECK(again.has_value());
  FUZZ_CHECK(again->served == stats->served);
  FUZZ_CHECK(again->bad_requests == stats->bad_requests);
  FUZZ_CHECK(again->distance_p99_ns == stats->distance_p99_ns);
  FUZZ_CHECK(again->loop_connections == stats->loop_connections);
  FUZZ_CHECK(again->stages.size() == stats->stages.size());
  for (size_t i = 0; i < again->stages.size(); ++i) {
    FUZZ_CHECK(again->stages[i].stage == stats->stages[i].stage);
    FUZZ_CHECK(again->stages[i].count == stats->stages[i].count);
    FUZZ_CHECK(again->stages[i].p50_ns == stats->stages[i].p50_ns);
    FUZZ_CHECK(again->stages[i].p99_ns == stats->stages[i].p99_ns);
  }
}

void CheckTraceConfig(const std::string& body) {
  if (auto req = wire::DecodeTraceConfigRequest(body)) {
    auto again =
        wire::DecodeTraceConfigRequest(wire::EncodeTraceConfigRequest(*req));
    FUZZ_CHECK(again.has_value());
    FUZZ_CHECK(again->sample_every == req->sample_every);
    FUZZ_CHECK(again->slow_micros == req->slow_micros);
  }
  if (auto resp = wire::DecodeTraceConfigResponse(body)) {
    auto again =
        wire::DecodeTraceConfigResponse(wire::EncodeTraceConfigResponse(*resp));
    FUZZ_CHECK(again.has_value());
    FUZZ_CHECK(again->sample_every == resp->sample_every);
    FUZZ_CHECK(again->slow_micros == resp->slow_micros);
  }
}

void CheckKnnFamily(const std::string& body) {
  if (auto req = wire::DecodeKnnRequest(body)) {
    auto again = wire::DecodeKnnRequest(wire::EncodeKnnRequest(*req));
    FUZZ_CHECK(again.has_value());
    FUZZ_CHECK(again->method == req->method);
    FUZZ_CHECK(again->category == req->category);
    FUZZ_CHECK(again->k == req->k);
    FUZZ_CHECK(again->source == req->source);
  }
  if (auto req = wire::DecodeOneToManyRequest(body)) {
    auto again =
        wire::DecodeOneToManyRequest(wire::EncodeOneToManyRequest(*req));
    FUZZ_CHECK(again.has_value());
    FUZZ_CHECK(again->category == req->category);
    FUZZ_CHECK(again->source == req->source);
  }
  for (wire::MessageType reply : {wire::kKnnReply, wire::kOneToManyReply}) {
    if (auto resp = wire::DecodeKnnResponse(reply, body)) {
      auto again =
          wire::DecodeKnnResponse(reply, wire::EncodeKnnResponse(reply, *resp));
      FUZZ_CHECK(again.has_value());
      FUZZ_CHECK(again->status == resp->status);
      FUZZ_CHECK(again->entries == resp->entries);
    }
  }
}

void WriteFile(const std::string& dir, const std::string& name,
               const std::string& bytes) {
  std::ofstream out(dir + "/" + name, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

namespace fuzz {

// Real frames from every encoder, plus truncated/corrupt variants, so
// the fuzzer starts from deep inside the accepting states.
void WriteSeedCorpus(const std::string& dir) {
  wire::QueryRequest q;
  q.request_id = 7;
  q.technique = wire::TechniqueId("ch");
  q.kind = wire::QueryKind::kPath;
  q.source = 12;
  q.target = 3400;
  q.deadline_micros = 250000;
  WriteFile(dir, "query_req.bin", wire::EncodeQueryRequest(q));
  WriteFile(dir, "query_req_v2.bin", wire::EncodeQueryRequestV2(q));

  wire::QueryResponse qr;
  qr.request_id = 7;
  qr.status = wire::Status::kOk;
  qr.distance = 123456;
  qr.server_latency_ns = 52000;
  qr.path = {12, 13, 90, 3400};
  WriteFile(dir, "query_resp.bin", wire::EncodeQueryResponse(qr));
  WriteFile(dir, "query_resp_v2.bin", wire::EncodeQueryResponseV2(qr));

  wire::StatsResponse st;
  st.served = 10;
  st.distance_count = 6;
  st.distance_p50_ns = 4000;
  st.distance_p99_ns = 90000;
  st.loop_connections = {3, 1};
  st.stages = {{1, 6, 700, 2000}, {2, 6, 100, 400}};
  WriteFile(dir, "stats_resp.bin", wire::EncodeStatsResponse(st));

  wire::TraceConfigRequest tc;
  tc.sample_every = 16;
  WriteFile(dir, "trace_config_req.bin", wire::EncodeTraceConfigRequest(tc));
  wire::TraceConfigResponse tcr;
  tcr.sample_every = 16;
  tcr.slow_micros = 1000;
  WriteFile(dir, "trace_config_resp.bin",
            wire::EncodeTraceConfigResponse(tcr));

  wire::KnnRequest knn;
  knn.method = wire::KnnMethod::kBucketCh;
  knn.category = 2;
  knn.k = 8;
  knn.source = 42;
  knn.deadline_micros = 250000;
  WriteFile(dir, "knn_req.bin", wire::EncodeKnnRequest(knn));

  wire::OneToManyRequest otm;
  otm.category = 2;
  otm.source = 42;
  otm.deadline_micros = 250000;
  WriteFile(dir, "one_to_many_req.bin", wire::EncodeOneToManyRequest(otm));

  wire::KnnResponse kr;
  kr.status = wire::Status::kOk;
  kr.server_latency_ns = 9000;
  kr.entries = {{42, 0}, {99, 1200}};
  WriteFile(dir, "knn_resp.bin",
            wire::EncodeKnnResponse(wire::kKnnReply, kr));
  WriteFile(dir, "one_to_many_resp.bin",
            wire::EncodeKnnResponse(wire::kOneToManyReply, kr));

  WriteFile(dir, "stats_req.bin", wire::EncodeStatsRequest());
  WriteFile(dir, "shutdown_req.bin", wire::EncodeShutdownRequest());

  // Hostile inputs: a truncated response and a path length lying about
  // the remaining bytes.
  const std::string resp = wire::EncodeQueryResponse(qr);
  WriteFile(dir, "truncated_resp.bin", resp.substr(0, resp.size() / 2));
  std::string lying = resp;
  lying[18] = char(0xff);  // path_len low byte, body now too short
  WriteFile(dir, "lying_path_len.bin", lying);
  WriteFile(dir, "empty.bin", std::string());
}

}  // namespace fuzz
}  // namespace roadnet

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace roadnet;
  const std::string body(reinterpret_cast<const char*>(data), size);
  wire::PeekType(body);
  CheckQueryRequest(body, /*v2=*/false);
  CheckQueryRequest(body, /*v2=*/true);
  CheckQueryResponse(body, /*v2=*/false);
  CheckQueryResponse(body, /*v2=*/true);
  CheckStatsResponse(body);
  CheckTraceConfig(body);
  CheckKnnFamily(body);
  return 0;
}
