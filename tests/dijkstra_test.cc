#include "dijkstra/dijkstra.h"

#include "dijkstra/bidirectional.h"
#include "tests/test_util.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

TEST(Dijkstra, PaperFigure1Distances) {
  Graph g = PaperFigure1Graph();
  Dijkstra dij(g);
  EXPECT_EQ(dij.Run(2, 6), 6u);  // dist(v3, v7), the paper's CH example
  EXPECT_EQ(dij.Run(0, 1), 2u);  // v1 -> v3 -> v2
  EXPECT_EQ(dij.Run(7, 3), 3u);  // v8 -> v6 -> v4
  EXPECT_EQ(dij.Run(4, 4), 0u);
}

TEST(Dijkstra, PathReconstruction) {
  Graph g = PaperFigure1Graph();
  Dijkstra dij(g);
  dij.RunAll(2);
  Path p = dij.PathTo(6);
  ASSERT_FALSE(p.empty());
  EXPECT_EQ(p.front(), 2u);
  EXPECT_EQ(p.back(), 6u);
  EXPECT_TRUE(IsValidPath(g, p));
  EXPECT_EQ(PathWeight(g, p), 6u);
}

TEST(Dijkstra, UnreachableVertex) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 1);
  Graph g = std::move(b).Build();
  Dijkstra dij(g);
  EXPECT_EQ(dij.Run(0, 2), kInfDistance);
  dij.RunAll(0);
  EXPECT_TRUE(dij.PathTo(2).empty());
}

TEST(Dijkstra, FirstHopTracking) {
  Graph g = PaperFigure1Graph();
  Dijkstra dij(g);
  dij.RunAllWithFirstHop(7);  // from v8
  // Figure 4: v4..v7 are reached via v6 (id 5); v1, v3 via v1 (id 0).
  EXPECT_EQ(dij.FirstHopOf(3), 5u);
  EXPECT_EQ(dij.FirstHopOf(4), 5u);
  EXPECT_EQ(dij.FirstHopOf(6), 5u);
  EXPECT_EQ(dij.FirstHopOf(0), 0u);
  EXPECT_EQ(dij.FirstHopOf(2), 0u);
  EXPECT_EQ(dij.FirstHopOf(7), kInvalidVertex);
}

TEST(Dijkstra, FirstHopConsistentWithParentChain) {
  Graph g = TestNetwork(400, 9);
  Dijkstra dij(g);
  dij.RunAllWithFirstHop(0);
  for (VertexId t = 1; t < g.NumVertices(); ++t) {
    Path p = dij.PathTo(t);
    if (p.size() < 2) continue;
    EXPECT_EQ(dij.FirstHopOf(t), p[1]) << "t=" << t;
  }
}

TEST(Dijkstra, RunUntilSettledStopsEarly) {
  Graph g = TestNetwork(900, 3);
  Dijkstra dij(g);
  std::vector<VertexId> targets = {1, 2, 3};
  dij.RunUntilSettled(0, targets);
  for (VertexId t : targets) EXPECT_TRUE(dij.Settled(t));
  const size_t partial = dij.SettledCount();
  dij.RunAll(0);
  EXPECT_LT(partial, dij.SettledCount());
}

TEST(Dijkstra, RunUntilSettledToleratesDuplicateTargets) {
  Graph g = TestNetwork(200, 3);
  Dijkstra dij(g);
  std::vector<VertexId> targets = {5, 5, 5, 7};
  dij.RunUntilSettled(0, targets);
  EXPECT_TRUE(dij.Settled(5));
  EXPECT_TRUE(dij.Settled(7));
}

TEST(Dijkstra, GenerationReuseIsClean) {
  Graph g = TestNetwork(300, 5);
  Dijkstra dij(g);
  const Distance d1 = dij.Run(0, 10);
  dij.Run(20, 30);
  EXPECT_EQ(dij.Run(0, 10), d1);
}

TEST(BidirectionalDijkstra, MatchesUnidirectional) {
  Graph g = TestNetwork(700, 13);
  BidirectionalDijkstra bidi(g);
  ExpectIndexCorrect(g, &bidi, 200, 17);
}

TEST(BidirectionalDijkstra, SettlesFewerVerticesThanUnidirectional) {
  // Section 3.1's whole point: each traversal covers roughly half the
  // radius, so far queries settle fewer vertices in total.
  Graph g = TestNetwork(2500, 19);
  BidirectionalDijkstra bidi(g);
  Dijkstra uni(g);
  size_t bidi_total = 0, uni_total = 0;
  for (auto [s, t] : RandomPairs(g, 40, 7)) {
    bidi.DistanceQuery(s, t);
    bidi_total += bidi.SettledCount();
    uni.Run(s, t);
    uni_total += uni.SettledCount();
  }
  EXPECT_LT(bidi_total, uni_total);
}

TEST(BidirectionalDijkstra, SelfQuery) {
  Graph g = TestNetwork(100, 1);
  BidirectionalDijkstra bidi(g);
  EXPECT_EQ(bidi.DistanceQuery(4, 4), 0u);
  Path p = bidi.PathQuery(4, 4);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 4u);
}

TEST(BidirectionalDijkstra, UnreachablePair) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1);
  b.AddEdge(2, 3, 1);
  Graph g = std::move(b).Build();
  BidirectionalDijkstra bidi(g);
  EXPECT_EQ(bidi.DistanceQuery(0, 3), kInfDistance);
  EXPECT_TRUE(bidi.PathQuery(0, 3).empty());
}

}  // namespace
}  // namespace roadnet
