// Engine stress: hammer one shared index from many threads with
// overlapping random batches and assert the answers are identical across
// repeated runs. Any cross-context data race (a scratch array secretly
// shared through the index) shows up here as a flaky mismatch — and as a
// hard error under ThreadSanitizer (see scripts/check.sh).

#include <utility>
#include <vector>

#include "ch/ch_index.h"
#include "dijkstra/bidirectional.h"
#include "engine/query_engine.h"
#include "tests/test_util.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

constexpr size_t kThreads = 8;
constexpr size_t kBatchQueries = 400;
constexpr int kRepeats = 5;

// Runs `kRepeats` batches of the same queries through an engine with
// kThreads workers and checks every run returns the same distances.
void ExpectStableUnderConcurrency(const Graph& g, const PathIndex& index) {
  const auto queries = RandomPairs(g, kBatchQueries, /*seed=*/777);
  QueryEngine engine(index, kThreads);

  BatchOptions options;
  options.record_latencies = false;
  // Tiny chunks force heavy cursor contention and cross-segment steals.
  options.chunk_size = 1;

  const BatchResult first = engine.Run(queries, options);
  ASSERT_EQ(first.distances.size(), queries.size());
  for (int run = 1; run < kRepeats; ++run) {
    const BatchResult next = engine.Run(queries, options);
    ASSERT_EQ(next.distances, first.distances)
        << index.Name() << " diverged on run " << run;
  }
}

TEST(EngineStress, BidirectionalDijkstraStableAcrossRuns) {
  Graph g = TestNetwork(800, /*seed=*/51);
  BidirectionalDijkstra bidi(g);
  ExpectStableUnderConcurrency(g, bidi);
}

TEST(EngineStress, ChStableAcrossRuns) {
  Graph g = TestNetwork(800, /*seed=*/52);
  ChIndex ch(g);
  ExpectStableUnderConcurrency(g, ch);
}

TEST(EngineStress, TwoEnginesShareOneIndex) {
  // Two engines (16 workers total) over the same immutable ChIndex,
  // interleaving batches; the index/context contract says this is safe.
  Graph g = TestNetwork(600, /*seed=*/53);
  ChIndex ch(g);
  const auto queries_a = RandomPairs(g, 200, /*seed=*/1);
  const auto queries_b = RandomPairs(g, 200, /*seed=*/2);

  Dijkstra reference(g);
  std::vector<Distance> truth_a, truth_b;
  for (auto [s, t] : queries_a) truth_a.push_back(reference.Run(s, t));
  for (auto [s, t] : queries_b) truth_b.push_back(reference.Run(s, t));

  QueryEngine engine_a(ch, kThreads);
  QueryEngine engine_b(ch, kThreads);
  for (int run = 0; run < kRepeats; ++run) {
    const BatchResult a = engine_a.Run(queries_a);
    const BatchResult b = engine_b.Run(queries_b);
    EXPECT_EQ(a.distances, truth_a) << "run " << run;
    EXPECT_EQ(b.distances, truth_b) << "run " << run;
  }
}

TEST(EngineStress, PathBatchesStableAcrossRuns) {
  Graph g = TestNetwork(500, /*seed=*/54);
  ChIndex ch(g);
  const auto queries = RandomPairs(g, 150, /*seed=*/3);
  QueryEngine engine(ch, kThreads);
  BatchOptions options;
  options.collect_paths = true;
  options.chunk_size = 2;
  const BatchResult first = engine.Run(queries, options);
  for (int run = 1; run < kRepeats; ++run) {
    const BatchResult next = engine.Run(queries, options);
    ASSERT_EQ(next.distances, first.distances) << "run " << run;
    ASSERT_EQ(next.paths, first.paths) << "run " << run;
  }
}

}  // namespace
}  // namespace roadnet
