// Deeper white-box-ish tests of algorithm internals through their public
// seams: witness-search truncation, upward search spaces, SILC first-hop
// algebra, TNR query routing counters, and generator structure.

#include <algorithm>

#include "ch/ch_index.h"
#include "ch/contraction.h"
#include "dijkstra/dijkstra.h"
#include "graph/generator.h"
#include "silc/silc_index.h"
#include "tests/test_util.h"
#include "tnr/tnr_index.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

// --- Contraction internals ---

TEST(ContractionInternals, TruncatedWitnessSearchStaysExact) {
  // A settle limit of 1 cripples witness searches, forcing many redundant
  // shortcuts — queries must stay exact regardless.
  Graph g = TestNetwork(500, 3);
  ChConfig crippled;
  crippled.witness_settle_limit = 1;
  ChConfig generous;
  generous.witness_settle_limit = 2000;
  ChIndex ch_crippled(g, crippled);
  ChIndex ch_generous(g, generous);
  EXPECT_GE(ch_crippled.NumShortcuts(), ch_generous.NumShortcuts());
  ExpectIndexCorrect(g, &ch_crippled, 100, 5);
}

TEST(ContractionInternals, StarGraphShortcutCount) {
  // A star with k leaves: contracting the centre first must connect every
  // leaf pair, C(k,2) shortcuts, since no witness path exists.
  const uint32_t k = 6;
  GraphBuilder b(k + 1);
  b.SetCoord(0, Point{0, 0});
  for (uint32_t i = 1; i <= k; ++i) {
    b.SetCoord(i, Point{static_cast<int32_t>(i * 100), 100});
    b.AddEdge(0, i, 10 + i);  // distinct weights: no witness ties
  }
  Graph g = std::move(b).Build();
  // Degree ordering contracts leaves first... the centre has max degree,
  // so with kDegree the centre goes last and NO shortcut is needed (each
  // leaf has a single neighbour). Check both orderings' invariants.
  ChConfig by_degree;
  by_degree.heuristic = OrderingHeuristic::kDegree;
  ChIndex ch(g, by_degree);
  EXPECT_EQ(ch.NumShortcuts(), 0u);
  Dijkstra dij(g);
  for (VertexId s = 0; s <= k; ++s) {
    for (VertexId t = 0; t <= k; ++t) {
      EXPECT_EQ(ch.DistanceQuery(s, t), dij.Run(s, t));
    }
  }
}

TEST(ContractionInternals, ShortcutWeightsAreValidUpperBounds) {
  // With the default (truncated) witness search a shortcut's weight is an
  // upper bound on the true distance — never below it (that would break
  // queries).
  Graph g = TestNetwork(700, 11);
  ContractionResult result = ContractGraph(g, ChConfig{});
  Dijkstra dij(g);
  size_t checked = 0;
  for (const TaggedEdge& e : result.edges) {
    if (e.middle == kInvalidVertex) continue;
    if (++checked > 150) break;  // sample
    EXPECT_GE(e.weight, dij.Run(e.u, e.v))
        << "shortcut (" << e.u << "," << e.v << ") via " << e.middle;
  }
  EXPECT_GT(checked, 10u);
}

TEST(ContractionInternals, ShortcutWeightIsARealPathLength) {
  // Every shortcut's weight is realizable by an actual path in G between
  // its endpoints (the recursively unpacked one), which together with the
  // upper-bound property makes redundant shortcuts harmless. Validated
  // end-to-end: unpacked CH paths match their reported distances, on a
  // graph contracted with a crippled witness search (max redundancy).
  Graph g = TestNetwork(700, 11);
  ChConfig config;
  config.witness_settle_limit = 1;
  ChIndex ch(g, config);
  for (auto [s, t] : RandomPairs(g, 80, 9)) {
    const Distance d = ch.DistanceQuery(s, t);
    Path p = ch.PathQuery(s, t);
    if (d == kInfDistance) {
      EXPECT_TRUE(p.empty());
      continue;
    }
    EXPECT_EQ(PathWeight(g, p), d);
  }
}

TEST(ContractionInternals, MiddleVertexHasLowerRank) {
  Graph g = TestNetwork(500, 13);
  ChConfig config;
  ContractionResult result = ContractGraph(g, config);
  for (const TaggedEdge& e : result.edges) {
    if (e.middle == kInvalidVertex) continue;
    EXPECT_LT(result.rank[e.middle], result.rank[e.u]);
    EXPECT_LT(result.rank[e.middle], result.rank[e.v]);
  }
}

// --- CH upward search space ---

TEST(ChInternals, UpwardSearchSpaceDistancesAreUpperBounds) {
  Graph g = TestNetwork(400, 7);
  ChIndex ch(g);
  Dijkstra dij(g);
  const VertexId s = 17;
  dij.RunAll(s);
  auto space = ch.UpwardSearchSpace(s);
  ASSERT_FALSE(space.empty());
  bool has_self = false;
  for (const auto& [v, d] : space) {
    EXPECT_GE(d, dij.DistanceTo(v)) << "v=" << v;
    if (v == s) {
      has_self = true;
      EXPECT_EQ(d, 0u);
    }
  }
  EXPECT_TRUE(has_self);
}

TEST(ChInternals, MeetingVertexRecoversTrueDistance) {
  // min over doubly-reached vertices of df + db equals the true distance
  // (the invariant the many-to-many engine builds on).
  Graph g = TestNetwork(400, 9);
  ChIndex ch(g);
  Dijkstra dij(g);
  for (auto [s, t] : RandomPairs(g, 40, 11)) {
    auto fs = ch.UpwardSearchSpace(s);
    auto bs = ch.UpwardSearchSpace(t);
    std::vector<Distance> db(g.NumVertices(), kInfDistance);
    for (const auto& [v, d] : bs) db[v] = d;
    Distance best = kInfDistance;
    for (const auto& [v, d] : fs) {
      if (db[v] != kInfDistance) best = std::min(best, d + db[v]);
    }
    EXPECT_EQ(best, dij.Run(s, t)) << "s=" << s << " t=" << t;
  }
}

// --- SILC first-hop algebra ---

TEST(SilcInternals, FirstHopDecomposesDistance) {
  // dist(s, t) == w(s, hop) + dist(hop, t) for the hop SILC reports.
  Graph g = TestNetwork(400, 15);
  SilcIndex silc(g);
  Dijkstra dij(g);
  for (auto [s, t] : RandomPairs(g, 80, 3)) {
    if (s == t) continue;
    const VertexId hop = silc.NextHop(s, t);
    const Distance d = dij.Run(s, t);
    if (d == kInfDistance) {
      EXPECT_EQ(hop, kInvalidVertex);
      continue;
    }
    ASSERT_NE(hop, kInvalidVertex);
    const auto w = g.EdgeWeight(s, hop);
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(*w + dij.Run(hop, t), d) << "s=" << s << " t=" << t;
  }
}

// --- TNR routing counters ---

TEST(TnrInternals, StatsPartitionAllDistanceQueries) {
  Graph g = TestNetwork(900, 17);
  ChIndex ch(g);
  TnrConfig config;
  config.grid_resolution = 16;
  config.hybrid = true;
  TnrIndex tnr(g, &ch, config);
  tnr.ResetStats();
  const auto pairs = RandomPairs(g, 200, 5);
  size_t non_trivial = 0;
  for (auto [s, t] : pairs) {
    tnr.DistanceQuery(s, t);
    if (s != t) ++non_trivial;  // s == t short-circuits before routing
  }
  const TnrStats& st = tnr.stats();
  EXPECT_EQ(st.coarse_table_answered + st.fine_table_answered +
                st.fallback_answered,
            non_trivial);
}

TEST(TnrInternals, LocalityFilterIsSymmetric) {
  Graph g = TestNetwork(700, 19);
  ChIndex ch(g);
  TnrConfig config;
  config.grid_resolution = 16;
  TnrIndex tnr(g, &ch, config);
  for (auto [s, t] : RandomPairs(g, 100, 7)) {
    EXPECT_EQ(tnr.TableApplicable(s, t), tnr.TableApplicable(t, s));
  }
}

// --- Generator structure ---

TEST(GeneratorInternals, CityBandsCreateNearPairs) {
  // With density bands, some vertex pairs sit far closer together than
  // the rural pitch — the property that populates the paper's Q1 bucket.
  GeneratorConfig config;
  config.target_vertices = 2500;
  config.seed = 5;
  Graph g = GenerateRoadNetwork(config);
  int64_t min_edge_linf = INT64_MAX;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const Arc& a : g.Neighbors(v)) {
      min_edge_linf =
          std::min(min_edge_linf, LInfDistance(g.Coord(v), g.Coord(a.to)));
    }
  }
  EXPECT_LT(min_edge_linf, config.pitch / 8);
}

TEST(GeneratorInternals, UniformModeHasNoNearPairs) {
  GeneratorConfig config;
  config.target_vertices = 2500;
  config.seed = 5;
  config.city_density_factor = 1;
  Graph g = GenerateRoadNetwork(config);
  int64_t min_edge_linf = INT64_MAX;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const Arc& a : g.Neighbors(v)) {
      min_edge_linf =
          std::min(min_edge_linf, LInfDistance(g.Coord(v), g.Coord(a.to)));
    }
  }
  EXPECT_GT(min_edge_linf, config.pitch / 8);
}

TEST(GeneratorInternals, LongEdgesOnlyWhenConfigured) {
  GeneratorConfig off;
  off.target_vertices = 900;
  off.seed = 3;
  GeneratorConfig on = off;
  on.long_edge_probability = 0.05;
  on.long_edge_span = 8;
  Graph g_off = GenerateRoadNetwork(off);
  Graph g_on = GenerateRoadNetwork(on);
  auto longest_edge = [](const Graph& g) {
    int64_t best = 0;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      for (const Arc& a : g.Neighbors(v)) {
        best = std::max(best, SquaredEuclidean(g.Coord(v), g.Coord(a.to)));
      }
    }
    return best;
  };
  EXPECT_GT(longest_edge(g_on), longest_edge(g_off) * 4);
}

}  // namespace
}  // namespace roadnet
