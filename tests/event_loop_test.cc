// EventLoopPool in isolation: backpressure pause/resume, cross-thread
// Post/Send, idle reaping, and the connection gauges — driven by a toy
// FrameHandler so the tests see the loop mechanics without a
// QueryServer in the way.

#include "server/event_loop.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/socket.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

// Connects to 127.0.0.1:port, optionally pinning SO_RCVBUF before the
// handshake so the advertised window stays small (keeps the kernel from
// absorbing megabytes of replies and hiding the server's write queue).
ScopedFd RawConnect(uint16_t port, int rcvbuf = 0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  if (rcvbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return ScopedFd(fd);
}

// Replies to every frame with `reply_bytes` of filler, inline from
// OnFrame (the path a loop-thread completion takes).
class BigReplyHandler : public FrameHandler {
 public:
  explicit BigReplyHandler(size_t reply_bytes) : reply_(reply_bytes, 'r') {}
  void BindPool(EventLoopPool* pool) { pool_ = pool; }

  bool OnFrame(const ConnRef& conn, std::string&&,
               const FrameMeta&) override {
    frames_.fetch_add(1);
    return pool_->Send(conn, reply_);
  }

  uint64_t Frames() const { return frames_.load(); }

 private:
  EventLoopPool* pool_ = nullptr;
  std::string reply_;
  std::atomic<uint64_t> frames_{0};
};

// Banks frames instead of replying; the test thread later Posts the
// replies — the deferred-completion path a dispatcher thread uses.
class BankingHandler : public FrameHandler {
 public:
  void BindPool(EventLoopPool* pool) { pool_ = pool; }

  bool OnFrame(const ConnRef& conn, std::string&& body,
               const FrameMeta& meta) override {
    std::lock_guard<std::mutex> lock(mu_);
    banked_.push_back({conn, std::move(body)});
    first_frame_seen_ = first_frame_seen_ || meta.first_frame;
    return true;
  }

  std::vector<std::pair<ConnRef, std::string>> Take() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(banked_);
  }
  bool SawFirstFrame() {
    std::lock_guard<std::mutex> lock(mu_);
    return first_frame_seen_;
  }

 private:
  EventLoopPool* pool_ = nullptr;
  std::mutex mu_;
  std::vector<std::pair<ConnRef, std::string>> banked_;
  bool first_frame_seen_ = false;
};

TEST(EventLoopPool, BackpressurePausesReadsAndResumesAfterDrain) {
  constexpr size_t kReplyBytes = 256u << 10;
  BigReplyHandler handler(kReplyBytes);
  EventLoopOptions options;
  options.num_loops = 1;
  options.max_connections = 4;
  options.write_soft_cap = 16u << 10;
  options.sndbuf_bytes = 4096;  // kernel can't hide the queue
  EventLoopPool pool(options, &handler);
  handler.BindPool(&pool);
  std::string error;
  uint16_t port = 0;
  ScopedFd listen = ListenTcp(0, &port, &error);
  ASSERT_TRUE(listen.valid()) << error;
  ASSERT_TRUE(pool.Start(std::move(listen), &error)) << error;

  ScopedFd client = RawConnect(port, /*rcvbuf=*/4096);
  constexpr int kFrames = 5;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(WriteFrame(client.get(), "ping"));
  }

  // The first frame's 256K reply blows past the 16K soft cap, so the
  // loop must stop reading: exactly one frame handled, bytes pinned in
  // the write queue.
  for (int spin = 0; spin < 200 && pool.Stats().write_queue_bytes == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(pool.Stats().write_queue_bytes, 0u);
  EXPECT_EQ(handler.Frames(), 1u);

  // Draining the client side lets the queue empty; the loop resumes
  // reading and the remaining frames flow.
  for (int i = 0; i < kFrames; ++i) {
    std::string reply;
    bool clean_eof = false;
    ASSERT_TRUE(ReadFrame(client.get(), &reply,
                          static_cast<uint32_t>(2 * kReplyBytes),
                          &clean_eof))
        << "reply " << i << (clean_eof ? " (eof)" : "");
    EXPECT_EQ(reply.size(), kReplyBytes);
  }
  EXPECT_EQ(handler.Frames(), static_cast<uint64_t>(kFrames));
  for (int spin = 0; spin < 200 && pool.Stats().write_queue_bytes != 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(pool.Stats().write_queue_bytes, 0u);

  pool.StopAccepting();
  pool.Stop();
}

TEST(EventLoopPool, PostedClosuresSendFromAnotherThread) {
  BankingHandler handler;
  EventLoopOptions options;
  options.num_loops = 2;
  EventLoopPool pool(options, &handler);
  handler.BindPool(&pool);
  std::string error;
  uint16_t port = 0;
  ScopedFd listen = ListenTcp(0, &port, &error);
  ASSERT_TRUE(listen.valid()) << error;
  ASSERT_TRUE(pool.Start(std::move(listen), &error)) << error;

  ScopedFd client = RawConnect(port);
  ASSERT_TRUE(WriteFrame(client.get(), "hello"));
  ASSERT_TRUE(WriteFrame(client.get(), "world"));

  std::vector<std::pair<ConnRef, std::string>> banked;
  for (int spin = 0; spin < 400 && banked.size() < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    auto more = handler.Take();
    banked.insert(banked.end(), more.begin(), more.end());
  }
  ASSERT_EQ(banked.size(), 2u);
  EXPECT_EQ(banked[0].second, "hello");
  EXPECT_EQ(banked[1].second, "world");
  EXPECT_TRUE(handler.SawFirstFrame());

  // Reply from this (non-loop) thread via Post: the closure runs on the
  // owning loop and may touch the connection.
  for (auto& [conn, body] : banked) {
    std::string reply = "re:" + body;
    pool.Post(conn.loop, [&pool, conn, reply] { pool.Send(conn, reply); });
  }
  std::string reply;
  bool clean_eof = false;
  ASSERT_TRUE(ReadFrame(client.get(), &reply, 1024, &clean_eof));
  EXPECT_EQ(reply, "re:hello");
  ASSERT_TRUE(ReadFrame(client.get(), &reply, 1024, &clean_eof));
  EXPECT_EQ(reply, "re:world");

  // A ConnRef with a stale generation must fail Send harmlessly.
  ConnRef stale = banked[0].first;
  stale.generation += 1;
  std::atomic<bool> sent{true};
  pool.Post(stale.loop, [&pool, stale, &sent] {
    sent.store(pool.Send(stale, "never"));
  });
  for (int spin = 0; spin < 200 && sent.load(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(sent.load());

  pool.StopAccepting();
  pool.Stop();
}

TEST(EventLoopPool, ReapsIdleConnectionsButNotActiveOnes) {
  BigReplyHandler handler(4);
  EventLoopOptions options;
  options.num_loops = 1;
  options.idle_timeout_ms = 100;
  EventLoopPool pool(options, &handler);
  handler.BindPool(&pool);
  std::string error;
  uint16_t port = 0;
  ScopedFd listen = ListenTcp(0, &port, &error);
  ASSERT_TRUE(listen.valid()) << error;
  ASSERT_TRUE(pool.Start(std::move(listen), &error)) << error;

  ScopedFd idle = RawConnect(port);
  ScopedFd active = RawConnect(port);

  // Keep one connection talking for ~6 idle timeouts while the other
  // stays silent: only the silent one may be reaped.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(WriteFrame(active.get(), "tick"));
    std::string reply;
    bool clean_eof = false;
    ASSERT_TRUE(ReadFrame(active.get(), &reply, 1024, &clean_eof));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // The idle peer sees a clean close.
  const timeval tv{2, 0};
  ::setsockopt(idle.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char buf[8];
  EXPECT_EQ(::recv(idle.get(), buf, sizeof(buf), 0), 0);

  const EventLoopPool::PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.idle_reaped, 1u);
  EXPECT_EQ(stats.open_connections, 1u);
  EXPECT_EQ(stats.accepted, 2u);

  pool.StopAccepting();
  pool.Stop();
}

TEST(EventLoopPool, GaugesTrackConnectionsPerLoop) {
  BigReplyHandler handler(4);
  EventLoopOptions options;
  options.num_loops = 2;
  options.max_connections = 8;
  EventLoopPool pool(options, &handler);
  handler.BindPool(&pool);
  std::string error;
  uint16_t port = 0;
  ScopedFd listen = ListenTcp(0, &port, &error);
  ASSERT_TRUE(listen.valid()) << error;
  ASSERT_TRUE(pool.Start(std::move(listen), &error)) << error;

  std::vector<ScopedFd> clients;
  for (int i = 0; i < 6; ++i) {
    clients.push_back(RawConnect(port));
    // One round trip pins the accept (EPOLLEXCLUSIVE may still be
    // parking the connection until its first readable event).
    ASSERT_TRUE(WriteFrame(clients.back().get(), "hi"));
    std::string reply;
    bool clean_eof = false;
    ASSERT_TRUE(ReadFrame(clients.back().get(), &reply, 64, &clean_eof));
  }

  const EventLoopPool::PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.accepted, 6u);
  EXPECT_EQ(stats.open_connections, 6u);
  ASSERT_EQ(stats.loop_connections.size(), 2u);
  EXPECT_EQ(stats.loop_connections[0] + stats.loop_connections[1], 6u);

  clients.clear();  // hang up; the loops notice EOF
  for (int spin = 0; spin < 400 && pool.Stats().open_connections != 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(pool.Stats().open_connections, 0u);

  pool.StopAccepting();
  pool.Stop();
}

}  // namespace
}  // namespace roadnet
