// Property-based sweeps: the correctness invariants must hold across
// structurally different networks (uniform vs city-banded, with/without
// highways, with/without bridges, sparse vs dense), not just the default
// generator configuration.

#include <memory>
#include <string>

#include "alt/alt_index.h"
#include "ch/ch_index.h"
#include "dijkstra/bidirectional.h"
#include "graph/connectivity.h"
#include "graph/generator.h"
#include "tests/test_util.h"
#include "tnr/tnr_index.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

struct NetworkShape {
  std::string name;
  GeneratorConfig config;
};

std::vector<NetworkShape> Shapes() {
  std::vector<NetworkShape> shapes;
  {
    NetworkShape s;
    s.name = "default";
    s.config.target_vertices = 700;
    shapes.push_back(s);
  }
  {
    NetworkShape s;
    s.name = "uniform_no_cities";
    s.config.target_vertices = 700;
    s.config.city_density_factor = 1;
    shapes.push_back(s);
  }
  {
    NetworkShape s;
    s.name = "no_highways";
    s.config.target_vertices = 700;
    s.config.highway_period = 0;
    shapes.push_back(s);
  }
  {
    NetworkShape s;
    s.name = "bridges";
    s.config.target_vertices = 700;
    s.config.long_edge_probability = 0.05;
    s.config.long_edge_span = 9;
    shapes.push_back(s);
  }
  {
    NetworkShape s;
    s.name = "sparse";
    s.config.target_vertices = 700;
    s.config.edge_keep_probability = 0.75;
    shapes.push_back(s);
  }
  {
    NetworkShape s;
    s.name = "dense_diagonals";
    s.config.target_vertices = 700;
    s.config.diagonal_probability = 0.5;
    shapes.push_back(s);
  }
  for (auto& s : shapes) s.config.seed = 99;
  return shapes;
}

class ShapeSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ShapeSweepTest, GeneratorInvariants) {
  const NetworkShape shape = Shapes()[GetParam()];
  Graph g = GenerateRoadNetwork(shape.config);
  SCOPED_TRACE(shape.name);
  ASSERT_GT(g.NumVertices(), 100u);
  EXPECT_TRUE(IsConnected(g));
  // Positive weights, symmetric adjacency.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const Arc& a : g.Neighbors(v)) {
      EXPECT_GT(a.weight, 0u);
      EXPECT_EQ(g.EdgeWeight(a.to, v), std::optional<Weight>(a.weight));
    }
  }
}

TEST_P(ShapeSweepTest, ChExactOnEveryShape) {
  const NetworkShape shape = Shapes()[GetParam()];
  Graph g = GenerateRoadNetwork(shape.config);
  SCOPED_TRACE(shape.name);
  ChIndex ch(g);
  ExpectIndexCorrect(g, &ch, 120, 1000 + GetParam());
}

TEST_P(ShapeSweepTest, TnrExactOnEveryShape) {
  const NetworkShape shape = Shapes()[GetParam()];
  Graph g = GenerateRoadNetwork(shape.config);
  SCOPED_TRACE(shape.name);
  ChIndex ch(g);
  TnrConfig config;
  config.grid_resolution = 12;
  TnrIndex tnr(g, &ch, config);
  ExpectIndexCorrect(g, &tnr, 120, 2000 + GetParam());
}

TEST_P(ShapeSweepTest, AltExactOnEveryShape) {
  const NetworkShape shape = Shapes()[GetParam()];
  Graph g = GenerateRoadNetwork(shape.config);
  SCOPED_TRACE(shape.name);
  AltIndex alt(g);
  ExpectIndexCorrect(g, &alt, 120, 3000 + GetParam());
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeSweepTest,
                         ::testing::Range<size_t>(0, Shapes().size()),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return Shapes()[info.param].name;
                         });

// Sub-path optimality: every prefix of a shortest path is itself a
// shortest path — checked through the CH index since it exercises
// unpacking on every prefix endpoint.
TEST(PathProperties, PrefixesAreShortest) {
  Graph g = TestNetwork(500, 77);
  ChIndex ch(g);
  Dijkstra dij(g);
  for (auto [s, t] : RandomPairs(g, 25, 5)) {
    Path p = ch.PathQuery(s, t);
    if (p.size() < 3) continue;
    dij.RunAll(s);
    Distance along = 0;
    for (size_t i = 0; i + 1 < p.size(); ++i) {
      along += *g.EdgeWeight(p[i], p[i + 1]);
      EXPECT_EQ(along, dij.DistanceTo(p[i + 1]))
          << "prefix to " << p[i + 1];
    }
  }
}

// Symmetry: on an undirected graph, dist(s, t) == dist(t, s) through
// every technique.
TEST(PathProperties, DistanceIsSymmetric) {
  Graph g = TestNetwork(500, 31);
  ChIndex ch(g);
  BidirectionalDijkstra bidi(g);
  AltIndex alt(g);
  for (auto [s, t] : RandomPairs(g, 50, 7)) {
    EXPECT_EQ(ch.DistanceQuery(s, t), ch.DistanceQuery(t, s));
    EXPECT_EQ(bidi.DistanceQuery(s, t), bidi.DistanceQuery(t, s));
    EXPECT_EQ(alt.DistanceQuery(s, t), alt.DistanceQuery(t, s));
  }
}

// Triangle inequality of the shortest-path metric via CH.
TEST(PathProperties, TriangleInequality) {
  Graph g = TestNetwork(400, 41);
  ChIndex ch(g);
  Rng rng(3);
  for (int i = 0; i < 60; ++i) {
    const VertexId a = static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
    const VertexId b = static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
    const VertexId c = static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
    const Distance ab = ch.DistanceQuery(a, b);
    const Distance bc = ch.DistanceQuery(b, c);
    const Distance ac = ch.DistanceQuery(a, c);
    if (ab == kInfDistance || bc == kInfDistance) continue;
    EXPECT_LE(ac, ab + bc);
  }
}

}  // namespace
}  // namespace roadnet
