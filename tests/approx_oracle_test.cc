#include "pcpd/approx_oracle.h"

#include "dijkstra/dijkstra.h"
#include "tests/test_util.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

struct OracleParam {
  uint64_t seed;
  double epsilon;
};

class ApproxOracleTest
    : public ::testing::TestWithParam<OracleParam> {};

TEST_P(ApproxOracleTest, ErrorStaysWithinEpsilon) {
  const auto [seed, epsilon] = GetParam();
  Graph g = TestNetwork(350, seed);
  ApproxDistanceOracle oracle(g, epsilon);
  Dijkstra dij(g);
  for (auto [s, t] : RandomPairs(g, 200, seed + 50)) {
    if (s == t) {
      EXPECT_EQ(oracle.Query(s, t), 0u);
      continue;
    }
    const Distance truth = dij.Run(s, t);
    const Distance approx = oracle.Query(s, t);
    if (truth == kInfDistance) {
      EXPECT_EQ(approx, kInfDistance);
      continue;
    }
    ASSERT_NE(approx, kInfDistance) << "s=" << s << " t=" << t;
    const double rel =
        std::abs(static_cast<double>(approx) - static_cast<double>(truth)) /
        static_cast<double>(truth);
    EXPECT_LE(rel, epsilon + 1e-9)
        << "s=" << s << " t=" << t << " approx=" << approx
        << " truth=" << truth;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndEpsilons, ApproxOracleTest,
    ::testing::Values(OracleParam{1, 0.01}, OracleParam{1, 0.10},
                      OracleParam{2, 0.25}, OracleParam{3, 0.05},
                      OracleParam{4, 0.50}));

TEST(ApproxOracle, ExactForSelfQueries) {
  Graph g = TestNetwork(200, 7);
  ApproxDistanceOracle oracle(g, 0.1);
  for (VertexId v = 0; v < g.NumVertices(); v += 13) {
    EXPECT_EQ(oracle.Query(v, v), 0u);
  }
}

TEST(ApproxOracle, LooserEpsilonMeansFewerPairs) {
  Graph g = TestNetwork(400, 9);
  ApproxDistanceOracle tight(g, 0.02);
  ApproxDistanceOracle loose(g, 0.5);
  EXPECT_LT(loose.NumPairs(), tight.NumPairs());
  EXPECT_LT(loose.IndexBytes(), tight.IndexBytes());
}

TEST(ApproxOracle, HandlesDisconnectedGraphs) {
  GraphBuilder b(6);
  b.SetCoord(0, Point{0, 0});
  b.SetCoord(1, Point{100, 0});
  b.SetCoord(2, Point{200, 0});
  b.SetCoord(3, Point{5000, 5000});
  b.SetCoord(4, Point{5100, 5000});
  b.SetCoord(5, Point{5200, 5000});
  b.AddEdge(0, 1, 5);
  b.AddEdge(1, 2, 5);
  b.AddEdge(3, 4, 7);
  b.AddEdge(4, 5, 7);
  Graph g = std::move(b).Build();
  ApproxDistanceOracle oracle(g, 0.1);
  EXPECT_EQ(oracle.Query(0, 5), kInfDistance);
  EXPECT_EQ(oracle.Query(3, 0), kInfDistance);
  EXPECT_NE(oracle.Query(0, 2), kInfDistance);
}

TEST(ApproxOracle, SmallerThanExactAllPairs) {
  // The point of the revision: the pair count stays well below the n^2
  // an explicit all-pairs table needs, and grows subquadratically.
  Graph g1 = TestNetwork(400, 11);
  Graph g2 = TestNetwork(1600, 11);
  ApproxDistanceOracle o1(g1, 0.25);
  ApproxDistanceOracle o2(g2, 0.25);
  const size_t n1 = g1.NumVertices();
  const size_t n2 = g2.NumVertices();
  EXPECT_LT(o1.NumPairs(), n1 * n1 / 2);
  EXPECT_LT(o2.NumPairs(), n2 * n2 / 2);
  const double pair_growth =
      static_cast<double>(o2.NumPairs()) / static_cast<double>(o1.NumPairs());
  const double quadratic_growth =
      (static_cast<double>(n2) * n2) / (static_cast<double>(n1) * n1);
  EXPECT_LT(pair_growth, quadratic_growth / 1.5);
}

}  // namespace
}  // namespace roadnet
