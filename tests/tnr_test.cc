#include "tnr/tnr_index.h"

#include <memory>

#include "ch/ch_index.h"
#include "dijkstra/dijkstra.h"
#include "graph/generator.h"
#include "tests/test_util.h"
#include "tnr/access_nodes.h"
#include "tnr/cell_grid.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

TEST(CellGrid, AssignsEveryVertexInRange) {
  Graph g = TestNetwork(500, 3);
  CellGrid grid(g, 16);
  size_t total = 0;
  for (uint32_t c : grid.NonEmptyCells()) total += grid.VerticesIn(c).size();
  EXPECT_EQ(total, g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    CellCoord c = grid.CellOf(v);
    EXPECT_GE(c.x, 0);
    EXPECT_GE(c.y, 0);
    EXPECT_LT(c.x, 16);
    EXPECT_LT(c.y, 16);
  }
}

TEST(CellGrid, ChebyshevMetric) {
  EXPECT_EQ(CellChebyshev({0, 0}, {3, -4}), 4);
  EXPECT_EQ(CellChebyshev({2, 2}, {2, 2}), 0);
  EXPECT_EQ(CellChebyshev({-1, 5}, {1, 5}), 2);
}

class TnrCorrectnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TnrCorrectnessTest, MatchesDijkstraAcrossSeeds) {
  Graph g = TestNetwork(900, GetParam());
  ChIndex ch(g);
  TnrConfig config;
  config.grid_resolution = 16;
  TnrIndex tnr(g, &ch, config);
  ExpectIndexCorrect(g, &tnr, 150, GetParam() + 100);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TnrCorrectnessTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(TnrIndex, CorrectWithBidirectionalFallback) {
  Graph g = TestNetwork(700, 9);
  ChIndex ch(g);
  TnrConfig config;
  config.grid_resolution = 16;
  config.fallback = TnrFallback::kBidirectionalDijkstra;
  TnrIndex tnr(g, &ch, config);
  ExpectIndexCorrect(g, &tnr, 120, 77);
}

TEST(TnrIndex, CorrectWithHybridGrid) {
  Graph g = TestNetwork(900, 12);
  ChIndex ch(g);
  TnrConfig config;
  config.grid_resolution = 8;
  config.hybrid = true;
  TnrIndex tnr(g, &ch, config);
  ExpectIndexCorrect(g, &tnr, 150, 33);
}

TEST(TnrIndex, CorrectWithLongEdges) {
  GeneratorConfig gc;
  gc.target_vertices = 900;
  gc.seed = 5;
  gc.highway_period = 8;
  gc.long_edge_probability = 0.02;
  Graph g = GenerateRoadNetwork(gc);
  ChIndex ch(g);
  TnrConfig config;
  config.grid_resolution = 16;
  TnrIndex tnr(g, &ch, config);
  ExpectIndexCorrect(g, &tnr, 150, 41);
}

TEST(TnrIndex, FarQueriesUseTheTable) {
  Graph g = TestNetwork(1600, 21);
  ChIndex ch(g);
  TnrConfig config;
  config.grid_resolution = 16;
  TnrIndex tnr(g, &ch, config);
  // Vertices on opposite corners of the network are many cells apart.
  VertexId far_a = 0, far_b = 0;
  int64_t best = -1;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId u : {VertexId{0}, VertexId{g.NumVertices() - 1}}) {
      int64_t d = LInfDistance(g.Coord(v), g.Coord(u));
      if (d > best) {
        best = d;
        far_a = v;
        far_b = u;
      }
    }
  }
  ASSERT_TRUE(tnr.TableApplicable(far_a, far_b));
  tnr.ResetStats();
  Dijkstra dij(g);
  EXPECT_EQ(tnr.DistanceQuery(far_a, far_b), dij.Run(far_a, far_b));
  EXPECT_EQ(tnr.stats().coarse_table_answered, 1u);
  EXPECT_EQ(tnr.stats().fallback_answered, 0u);
}

TEST(TnrIndex, NearQueriesFallBack) {
  Graph g = TestNetwork(900, 23);
  ChIndex ch(g);
  TnrConfig config;
  config.grid_resolution = 8;
  TnrIndex tnr(g, &ch, config);
  tnr.ResetStats();
  // A vertex and its neighbour are in the same or adjacent cells.
  VertexId s = 0;
  VertexId t = g.Neighbors(0)[0].to;
  Dijkstra dij(g);
  EXPECT_EQ(tnr.DistanceQuery(s, t), dij.Run(s, t));
  EXPECT_EQ(tnr.stats().fallback_answered, 1u);
}

// --- Appendix B: the flawed access-node computation gives wrong answers.
//
// Reconstruction of Figure 12(b): a vertex v5 just inside the inner shell
// whose single long edge jumps beyond the outer shell to v6, v6 reachable
// ONLY through v5. The flawed enumeration never sees the jumping edge, so
// v5/v6 produce no access node and far queries toward v6 go wrong, while
// the corrected computation stays exact.
Graph AppendixBGraph(uint32_t* out_v1, uint32_t* out_v6) {
  // A 40x1 chain of vertices spaced one cell apart on a 40-cell-wide grid,
  // plus the jumping edge. Cells are made ~100 units wide by bounding
  // coordinates [0, 4000).
  GraphBuilder b(42);
  for (uint32_t i = 0; i < 40; ++i) {
    b.SetCoord(i, Point{static_cast<int32_t>(i * 100 + 50), 50});
    if (i > 0) b.AddEdge(i - 1, i, 100);
  }
  // v5-analogue: id 40, one cell to the right of vertex 0 (inside the
  // inner shell of vertex 0's cell).
  b.SetCoord(40, Point{150, 150});
  b.AddEdge(0, 40, 100);
  // v6-analogue: id 41, far beyond the outer shell (cell distance ~12),
  // connected ONLY via the long edge from 40.
  b.SetCoord(41, Point{1250, 150});
  b.AddEdge(40, 41, 1100);
  *out_v1 = 0;
  *out_v6 = 41;
  return std::move(b).Build();
}

TEST(TnrDefect, FlawedAccessNodesGiveWrongAnswers) {
  uint32_t v1 = 0, v6 = 0;
  Graph g = AppendixBGraph(&v1, &v6);
  ChIndex ch(g);
  Dijkstra dij(g);

  TnrConfig correct_config;
  correct_config.grid_resolution = 40;
  TnrIndex correct(g, &ch, correct_config);

  TnrConfig flawed_config = correct_config;
  flawed_config.flawed_access_nodes = true;
  TnrIndex flawed(g, &ch, flawed_config);

  // The query must be far enough for the table to apply on both variants.
  ASSERT_TRUE(correct.TableApplicable(v1, v6));
  const Distance truth = dij.Run(v1, v6);
  EXPECT_EQ(correct.DistanceQuery(v1, v6), truth)
      << "corrected TNR must be exact";
  EXPECT_NE(flawed.DistanceQuery(v1, v6), truth)
      << "the Appendix-B defect should manifest on the jumping edge";
}

TEST(TnrDefect, CorrectVariantExactOnLongEdgeNetworks) {
  GeneratorConfig gc;
  gc.target_vertices = 1600;
  gc.seed = 77;
  gc.highway_period = 8;
  gc.long_edge_probability = 0.03;
  gc.long_edge_span = 7;
  Graph g = GenerateRoadNetwork(gc);
  ChIndex ch(g);
  TnrConfig config;
  config.grid_resolution = 24;
  TnrIndex tnr(g, &ch, config);
  ExpectIndexCorrect(g, &tnr, 200, 91);
}

}  // namespace
}  // namespace roadnet
