// Cross-technique integration tests: the paper's central premise is that
// all five techniques answer the same two query types exactly; here every
// index is built over the same networks and checked for full agreement on
// generated workloads, mirroring the experimental pipeline end to end.

#include <memory>
#include <sstream>
#include <vector>

#include "ch/ch_index.h"
#include "dijkstra/bidirectional.h"
#include "graph/dimacs.h"
#include "pcpd/pcpd_index.h"
#include "silc/silc_index.h"
#include "tests/test_util.h"
#include "tnr/tnr_index.h"
#include "workload/datasets.h"
#include "workload/query_gen.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

class AllIndexesTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AllIndexesTest, AllFiveTechniquesAgreeOnGeneratedWorkloads) {
  GeneratorConfig gc;
  gc.target_vertices = 600;
  gc.seed = GetParam();
  gc.highway_period = 8;
  Graph g = GenerateRoadNetwork(gc);

  BidirectionalDijkstra bidi(g);
  ChIndex ch(g);
  TnrConfig tnr_config;
  tnr_config.grid_resolution = 12;
  TnrIndex tnr(g, &ch, tnr_config);
  SilcIndex silc(g);
  PcpdIndex pcpd(g);
  std::vector<PathIndex*> indexes = {&bidi, &ch, &tnr, &silc, &pcpd};

  const auto sets = GenerateLInfQuerySets(g, 15, GetParam() + 7);
  Dijkstra truth(g);
  for (const auto& set : sets) {
    for (auto [s, t] : set.pairs) {
      const Distance expected = truth.Run(s, t);
      for (PathIndex* index : indexes) {
        EXPECT_EQ(index->DistanceQuery(s, t), expected)
            << index->Name() << " on " << set.name << " s=" << s
            << " t=" << t;
        Path p = index->PathQuery(s, t);
        ASSERT_FALSE(p.empty()) << index->Name();
        EXPECT_EQ(p.front(), s) << index->Name();
        EXPECT_EQ(p.back(), t) << index->Name();
        EXPECT_TRUE(IsValidPath(g, p)) << index->Name();
        EXPECT_EQ(PathWeight(g, p), expected)
            << index->Name() << " on " << set.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllIndexesTest, ::testing::Values(11, 22, 33));

TEST(Integration, SpaceOrderingMatchesFigure6) {
  // Figure 6(a): CH has the smallest index; TNR sits between CH and the
  // all-pairs techniques; SILC and PCPD are the largest by far.
  Graph g = BuildDataset(PaperDatasets()[1]);  // NH' (~1.1k vertices)
  ChIndex ch(g);
  TnrConfig tc;
  tc.grid_resolution = 16;
  TnrIndex tnr(g, &ch, tc);
  SilcIndex silc(g);
  PcpdIndex pcpd(g);
  EXPECT_LT(ch.IndexBytes(), tnr.IndexBytes() + ch.IndexBytes());
  EXPECT_LT(ch.IndexBytes(), silc.IndexBytes());
  EXPECT_LT(ch.IndexBytes(), pcpd.IndexBytes());
}

TEST(Integration, DimacsRoundTripPreservesQueryAnswers) {
  // Export a network to the DIMACS challenge format, re-import it, and
  // verify CH gives identical answers: the I/O path a user with real
  // DIMACS data exercises.
  Graph g = TestNetwork(400, 3);
  std::stringstream gr, co;
  WriteDimacs(g, gr, co);
  std::string error;
  auto reparsed = ReadDimacs(gr, co, &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  ChIndex ch1(g);
  ChIndex ch2(*reparsed);
  for (auto [s, t] : RandomPairs(g, 100, 9)) {
    EXPECT_EQ(ch1.DistanceQuery(s, t), ch2.DistanceQuery(s, t));
  }
}

}  // namespace
}  // namespace roadnet
