#include "silc/silc_index.h"

#include "dijkstra/dijkstra.h"
#include "silc/color_quadtree.h"
#include "spatial/morton.h"
#include "tests/test_util.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

TEST(Morton, RoundTrips) {
  for (uint32_t x : {0u, 1u, 7u, 255u, 70000u, 0x7fffffffu}) {
    for (uint32_t y : {0u, 3u, 1024u, 0x55555555u}) {
      const uint64_t code = MortonEncode(x, y);
      EXPECT_EQ(MortonX(code), x);
      EXPECT_EQ(MortonY(code), y);
    }
  }
}

TEST(Morton, PreservesQuadrantOrder) {
  // All codes in the lower-left quadrant of an aligned square precede the
  // other quadrants — the property the quadtree intervals rely on.
  EXPECT_LT(MortonEncode(1, 1), MortonEncode(2, 0));
  EXPECT_LT(MortonEncode(3, 1), MortonEncode(0, 2));
  EXPECT_LT(MortonEncode(3, 3), MortonEncode(4, 0));
}

TEST(MortonSpace, SortedOrderIsConsistent) {
  Graph g = TestNetwork(300, 5);
  MortonSpace space(g);
  const auto& order = space.SortedVertices();
  const auto& codes = space.SortedCodes();
  ASSERT_EQ(order.size(), g.NumVertices());
  for (size_t i = 0; i + 1 < codes.size(); ++i) {
    EXPECT_LE(codes[i], codes[i + 1]);
  }
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(space.CodeOf(order[i]), codes[i]);
  }
}

TEST(CompressColors, UniformColoringIsOneInterval) {
  Graph g = TestNetwork(200, 7);
  MortonSpace space(g);
  std::vector<uint32_t> colors(g.NumVertices(), 3);
  std::vector<ColorInterval> intervals;
  std::vector<uint32_t> exceptions;
  CompressColors(space, colors, &intervals, &exceptions);
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0].color, 3u);
  EXPECT_TRUE(exceptions.empty());
}

TEST(CompressColors, LookupRecoversEveryColor) {
  Graph g = TestNetwork(500, 9);
  MortonSpace space(g);
  // Pseudo-random colouring: worst case for compression, but lookups must
  // still be exact.
  Rng rng(11);
  std::vector<uint32_t> colors(g.NumVertices());
  for (auto& c : colors) c = static_cast<uint32_t>(rng.NextBelow(4));
  std::vector<ColorInterval> intervals;
  std::vector<uint32_t> exceptions;
  CompressColors(space, colors, &intervals, &exceptions);
  for (size_t i = 0; i < g.NumVertices(); ++i) {
    bool is_exception = false;
    for (uint32_t e : exceptions) {
      if (e == i) is_exception = true;
    }
    if (is_exception) continue;
    EXPECT_EQ(LookupColor(intervals.data(),
                          intervals.data() + intervals.size(),
                          space.SortedCodes()[i]),
              colors[i])
        << "position " << i;
  }
}

TEST(CompressColors, SpatiallyCoherentColoringCompressesWell) {
  Graph g = TestNetwork(900, 13);
  MortonSpace space(g);
  // Colour by coordinate half-plane: two blocks of spatially contiguous
  // colour, so the quadtree should emit far fewer intervals than n.
  const Rect& b = g.Bounds();
  const int32_t mid_x = (b.min_x + b.max_x) / 2;
  std::vector<uint32_t> colors(g.NumVertices());
  for (size_t i = 0; i < g.NumVertices(); ++i) {
    colors[i] = g.Coord(space.SortedVertices()[i]).x < mid_x ? 0 : 1;
  }
  std::vector<ColorInterval> intervals;
  std::vector<uint32_t> exceptions;
  CompressColors(space, colors, &intervals, &exceptions);
  EXPECT_LT(intervals.size(), g.NumVertices() / 4);
}

class SilcCorrectnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SilcCorrectnessTest, MatchesDijkstraAcrossSeeds) {
  Graph g = TestNetwork(500, GetParam());
  SilcIndex silc(g);
  ExpectIndexCorrect(g, &silc, 150, GetParam() + 500);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SilcCorrectnessTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(SilcIndex, PaperFigure1FirstHops) {
  Graph g = PaperFigure1Graph();
  SilcIndex silc(g);
  // Figure 4: from v8 (id 7), shortest paths to v4, v5, v6, v7 (ids 3-6)
  // start with the hop to v6 (id 5); paths to v1 and v3 (ids 0, 2) start
  // with the hop to v1 (id 0).
  EXPECT_EQ(silc.NextHop(7, 3), 5u);
  EXPECT_EQ(silc.NextHop(7, 4), 5u);
  EXPECT_EQ(silc.NextHop(7, 5), 5u);
  EXPECT_EQ(silc.NextHop(7, 6), 5u);
  EXPECT_EQ(silc.NextHop(7, 0), 0u);
  EXPECT_EQ(silc.NextHop(7, 2), 0u);
}

TEST(SilcIndex, DistanceEqualsPathWeight) {
  Graph g = TestNetwork(400, 21);
  SilcIndex silc(g);
  for (auto [s, t] : RandomPairs(g, 100, 3)) {
    Path p = silc.PathQuery(s, t);
    if (p.empty()) {
      EXPECT_EQ(silc.DistanceQuery(s, t), kInfDistance);
      continue;
    }
    EXPECT_EQ(silc.DistanceQuery(s, t), PathWeight(g, p));
  }
}

TEST(SilcIndex, HandlesDuplicateCoordinates) {
  // Two vertices at the same point plus a few distinct ones: the quadtree
  // cannot separate the duplicates, so the exception path must kick in.
  GraphBuilder b(5);
  b.SetCoord(0, Point{0, 0});
  b.SetCoord(1, Point{100, 100});
  b.SetCoord(2, Point{100, 100});  // duplicate of vertex 1
  b.SetCoord(3, Point{200, 0});
  b.SetCoord(4, Point{300, 100});
  b.AddEdge(0, 1, 5);
  b.AddEdge(0, 2, 9);
  b.AddEdge(1, 3, 3);
  b.AddEdge(2, 4, 2);
  b.AddEdge(3, 4, 4);
  Graph g = std::move(b).Build();
  SilcIndex silc(g);
  ExpectIndexCorrect(g, &silc, 50, 1);
}

TEST(SilcIndex, IndexGrowsSubquadratically) {
  // O(n sqrt(n)) intervals: doubling n should far less than quadruple the
  // interval count.
  Graph g1 = TestNetwork(400, 31);
  Graph g2 = TestNetwork(1600, 31);
  SilcIndex s1(g1);
  SilcIndex s2(g2);
  const double growth = static_cast<double>(s2.NumIntervals()) /
                        static_cast<double>(s1.NumIntervals());
  const double n_growth = static_cast<double>(g2.NumVertices()) /
                          static_cast<double>(g1.NumVertices());
  EXPECT_LT(growth, n_growth * n_growth / 2);
}

}  // namespace
}  // namespace roadnet
