// Request-tracing subsystem (obs/trace.h): the SPSC ring, the
// deterministic head sampler, the tail (slow) capture, the JSONL
// writer, concurrent multi-shard recording against a live exporter
// (the configuration the TSan stage runs), the engine's per-query
// execute stamps, and the RAII span-balance assertion.

#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dijkstra/bidirectional.h"
#include "engine/query_engine.h"
#include "tests/test_util.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

// A trace with one synthetic stage window so Finish() has a total.
RequestTrace MakeFinishedTrace(uint64_t start_ns, uint64_t end_ns) {
  RequestTrace trace;
  trace.active = true;
  trace.RecordStage(TraceStage::kExecute, start_ns, end_ns);
  return trace;
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(0).Capacity(), 2u);
  EXPECT_EQ(TraceRing(1).Capacity(), 2u);
  EXPECT_EQ(TraceRing(3).Capacity(), 4u);
  EXPECT_EQ(TraceRing(256).Capacity(), 256u);
  EXPECT_EQ(TraceRing(257).Capacity(), 512u);
}

TEST(TraceRingTest, WraparoundKeepsFifoOrderAndCountsDrops) {
  TraceRing ring(4);
  std::vector<RequestTrace> out;

  // Fill, drain, refill across the wrap point several times: indices
  // keep increasing past capacity, exercising the masked slots.
  uint64_t next_seq = 0;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 3; ++i) {
      RequestTrace t;
      t.seq = next_seq++;
      ASSERT_TRUE(ring.TryPush(t));
    }
    out.clear();
    ASSERT_EQ(ring.Drain(&out, 16), 3u);
    for (size_t i = 1; i < out.size(); ++i) {
      EXPECT_EQ(out[i].seq, out[i - 1].seq + 1);
    }
  }
  EXPECT_EQ(ring.Dropped(), 0u);

  // Overfill: the newest traces are the ones dropped, FIFO of the
  // accepted prefix is preserved.
  for (uint64_t i = 0; i < 6; ++i) {
    RequestTrace t;
    t.seq = 100 + i;
    const bool pushed = ring.TryPush(t);
    EXPECT_EQ(pushed, i < 4);
  }
  EXPECT_EQ(ring.Dropped(), 2u);
  out.clear();
  EXPECT_EQ(ring.Drain(&out, 2), 2u);  // partial drain honors `max`
  EXPECT_EQ(out[0].seq, 100u);
  EXPECT_EQ(out[1].seq, 101u);
  out.clear();
  EXPECT_EQ(ring.Drain(&out, 16), 2u);
  EXPECT_EQ(out[0].seq, 102u);
  EXPECT_EQ(out[1].seq, 103u);
}

TEST(TracerTest, HeadSamplingIsDeterministicInSeedAndSequence) {
  if constexpr (!kTracingCompiledIn) GTEST_SKIP();
  TracerOptions options;
  options.sample_every = 4;
  options.id_seed = 1234;
  options.shards = 1;

  // Two tracers with identical options assign identical ids and
  // identical sampling decisions to the same sequence positions.
  Tracer a(options), b(options);
  for (int i = 0; i < 64; ++i) {
    RequestTrace ta, tb;
    a.StartRequest(&ta);
    b.StartRequest(&tb);
    ASSERT_TRUE(ta.active);
    EXPECT_EQ(ta.seq, tb.seq);
    EXPECT_EQ(ta.trace_id, tb.trace_id);
    EXPECT_EQ(ta.head_sampled, tb.head_sampled);
    EXPECT_EQ(ta.head_sampled, ta.seq % 4 == 0);
    EXPECT_NE(ta.trace_id, 0u);
  }

  // A different seed produces a different id stream.
  TracerOptions reseeded = options;
  reseeded.id_seed = 99;
  Tracer c(reseeded);
  RequestTrace t0, t0c;
  Tracer d(options);
  d.StartRequest(&t0);
  c.StartRequest(&t0c);
  EXPECT_NE(t0.trace_id, t0c.trace_id);
}

TEST(TracerTest, RuntimeOffSkipsRequestsEntirely) {
  if constexpr (!kTracingCompiledIn) GTEST_SKIP();
  TracerOptions options;  // sample_every 0, slow disabled: runtime off
  options.shards = 1;
  Tracer tracer(options);
  EXPECT_FALSE(tracer.RuntimeEnabled());

  RequestTrace trace;
  tracer.StartRequest(&trace);
  EXPECT_FALSE(trace.active);
  EXPECT_EQ(trace.NowNs(), 0u);  // inactive: no clock reads
  trace.RecordStage(TraceStage::kExecute, 1, 2);
  EXPECT_FALSE(trace.stages[static_cast<size_t>(TraceStage::kExecute)]
                   .Present());
  const int shard = tracer.AcquireShard();
  tracer.Finish(shard, &trace);  // no-op for inactive traces
  tracer.ReleaseShard(shard);
  EXPECT_EQ(tracer.GetSnapshot().finished, 0u);
}

TEST(TracerTest, ConfigureTogglesCaptureAtRuntime) {
  if constexpr (!kTracingCompiledIn) GTEST_SKIP();
  TracerOptions options;
  options.shards = 1;
  Tracer tracer(options);
  EXPECT_FALSE(tracer.RuntimeEnabled());

  tracer.Configure(8, std::nullopt);
  EXPECT_TRUE(tracer.RuntimeEnabled());
  EXPECT_EQ(tracer.SampleEvery(), 8u);
  EXPECT_EQ(tracer.SlowMicros(), kTraceSlowDisabled);

  tracer.Configure(std::nullopt, 500);
  EXPECT_EQ(tracer.SampleEvery(), 8u);  // nullopt leaves the knob alone
  EXPECT_EQ(tracer.SlowMicros(), 500u);

  tracer.Configure(0, kTraceSlowDisabled);
  EXPECT_FALSE(tracer.RuntimeEnabled());
  RequestTrace trace;
  tracer.StartRequest(&trace);
  EXPECT_FALSE(trace.active);
}

TEST(TracerTest, SlowThresholdZeroCapturesUnsampledRequests) {
  if constexpr (!kTracingCompiledIn) GTEST_SKIP();
  TracerOptions options;
  options.sample_every = 0;  // head sampler off
  options.slow_micros = 0;   // ...but everything counts as slow
  options.shards = 1;
  Tracer tracer(options);
  const int shard = tracer.AcquireShard();
  ASSERT_EQ(shard, 0);

  for (int i = 0; i < 10; ++i) {
    RequestTrace trace;
    tracer.StartRequest(&trace);
    ASSERT_TRUE(trace.active);
    EXPECT_FALSE(trace.head_sampled);
    const uint64_t now = trace.NowNs();
    trace.RecordStage(TraceStage::kExecute, now, now + 1000);
    tracer.Finish(shard, &trace);
    EXPECT_TRUE(trace.slow);
  }
  tracer.ReleaseShard(shard);

  const Tracer::Snapshot snap = tracer.GetSnapshot();
  EXPECT_EQ(snap.finished, 10u);
  EXPECT_EQ(snap.captured, 10u);
  EXPECT_EQ(snap.slow, 10u);
  EXPECT_EQ(snap.head_sampled, 0u);
  EXPECT_EQ(snap.dropped, 0u);
  ASSERT_EQ(snap.stages.size(), 1u);
  EXPECT_EQ(snap.stages[0].stage, TraceStage::kExecute);
  EXPECT_EQ(snap.stages[0].count, 10u);
}

TEST(TracerTest, SlowThresholdSeparatesFastFromSlow) {
  if constexpr (!kTracingCompiledIn) GTEST_SKIP();
  TracerOptions options;
  options.slow_micros = 10;  // 10us threshold
  options.shards = 1;
  Tracer tracer(options);
  const int shard = tracer.AcquireShard();

  RequestTrace fast = MakeFinishedTrace(100, 100 + 9 * 1000);
  tracer.Finish(shard, &fast);
  EXPECT_FALSE(fast.slow);
  EXPECT_EQ(fast.total_ns, 9000u);

  RequestTrace slow = MakeFinishedTrace(100, 100 + 11 * 1000);
  tracer.Finish(shard, &slow);
  EXPECT_TRUE(slow.slow);
  tracer.ReleaseShard(shard);

  const Tracer::Snapshot snap = tracer.GetSnapshot();
  EXPECT_EQ(snap.finished, 2u);
  EXPECT_EQ(snap.captured, 1u);  // only the slow one crossed the bar
  EXPECT_EQ(snap.slow, 1u);
}

const char* TestStatusName(uint8_t status) {
  return status == 0 ? "ok" : "unreachable";
}

TEST(TraceJsonTest, RendersSchemaFieldsAndSkipsAbsentStages) {
  RequestTrace trace;
  trace.trace_id = 0xabcdef0102030405ull;
  trace.seq = 7;
  trace.kind = 1;  // path
  trace.status = 0;
  trace.source = 11;
  trace.target = 22;
  trace.head_sampled = true;
  trace.slow = true;
  trace.total_ns = 4242;
  trace.counters.vertices_settled = 17;
  trace.stages[static_cast<size_t>(TraceStage::kFrameRead)] = {100, 200};
  trace.stages[static_cast<size_t>(TraceStage::kExecute)] = {300, 400};

  std::string json;
  AppendTraceJson(trace, &TestStatusName, &json);
  EXPECT_NE(json.find("\"trace_id\":\"abcdef0102030405\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"path\""), std::string::npos);
  EXPECT_NE(json.find("\"source\":11"), std::string::npos);
  EXPECT_NE(json.find("\"target\":22"), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"sampled\":\"head+slow\""), std::string::npos);
  EXPECT_NE(json.find("\"total_ns\":4242"), std::string::npos);
  EXPECT_NE(json.find("\"vertices_settled\":17"), std::string::npos);
  EXPECT_NE(json.find("{\"stage\":\"frame_read\",\"start_ns\":100,"
                      "\"end_ns\":200}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("{\"stage\":\"execute\",\"start_ns\":300,"
                      "\"end_ns\":400}"),
            std::string::npos);
  // Absent stages are omitted, not emitted with zeros.
  EXPECT_EQ(json.find("\"accept\""), std::string::npos);
  EXPECT_EQ(json.find("\"queue_wait\""), std::string::npos);

  // Without a status-name mapper the raw byte is rendered.
  trace.status = 3;
  trace.head_sampled = false;
  std::string fallback;
  AppendTraceJson(trace, nullptr, &fallback);
  EXPECT_NE(fallback.find("\"status\":\"status-3\""), std::string::npos);
  EXPECT_NE(fallback.find("\"sampled\":\"slow\""), std::string::npos);
}

TEST(TracerTest, ConcurrentShardsRecordCleanlyWithLiveExporter) {
  if constexpr (!kTracingCompiledIn) GTEST_SKIP();
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 1000;
  constexpr uint64_t kSampleEvery = 4;

  TracerOptions options;
  options.sample_every = kSampleEvery;
  options.shards = kThreads;
  // Large enough that even a pathological schedule (one thread drawing
  // every sampled sequence number) cannot overflow a ring before the
  // exporter drains it: dropped must end at exactly 0.
  options.ring_capacity = kPerThread;
  options.id_seed = 77;
  options.status_name = &TestStatusName;
  Tracer tracer(options);

  const std::string path = testing::TempDir() + "/trace_test_export.jsonl";
  std::string error;
  ASSERT_TRUE(tracer.StartExporter(path, &error)) << error;

  // Acquire every shard up front so the threads provably hold distinct
  // shards for the whole run (the server's shape: one shard per live
  // connection). With a quick-exiting thread, release-then-reacquire
  // could funnel several threads' traces into one ring.
  std::vector<int> shards(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    shards[t] = tracer.AcquireShard();
    ASSERT_GE(shards[t], 0);
  }
  EXPECT_EQ(tracer.AcquireShard(), -1);  // pool exhausted

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, shard = shards[t]] {
      for (size_t i = 0; i < kPerThread; ++i) {
        RequestTrace trace;
        tracer.StartRequest(&trace);
        {
          TraceSpan span(&trace, TraceStage::kExecute);
          std::atomic_signal_fence(std::memory_order_seq_cst);
        }
        tracer.Finish(shard, &trace);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int shard : shards) tracer.ReleaseShard(shard);
  tracer.StopExporter();

  const Tracer::Snapshot snap = tracer.GetSnapshot();
  EXPECT_EQ(snap.finished, kThreads * kPerThread);
  EXPECT_EQ(snap.head_sampled, kThreads * kPerThread / kSampleEvery);
  EXPECT_EQ(snap.captured, snap.head_sampled);
  EXPECT_EQ(snap.dropped, 0u);
  EXPECT_EQ(snap.slow, 0u);

  // Every captured trace is one JSONL line in the export file.
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  size_t lines = 0;
  bool all_have_ids = true;
  std::string line;
  for (int c = std::fgetc(f); c != EOF; c = std::fgetc(f)) {
    if (c != '\n') {
      line.push_back(static_cast<char>(c));
      continue;
    }
    ++lines;
    if (line.find("\"trace_id\":\"") == std::string::npos) {
      all_have_ids = false;
    }
    line.clear();
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(lines, snap.captured);
  EXPECT_TRUE(all_have_ids);
}

TEST(TracerTest, EngineStampsPerQueryExecuteWindows) {
  if constexpr (!kTracingCompiledIn) GTEST_SKIP();
  const Graph g = TestNetwork(200, 31);
  BidirectionalDijkstra index(g);
  QueryEngine engine(index, 4);
  const auto queries = RandomPairs(g, 64, 17);

  BatchOptions options;
  options.record_per_query = true;
  options.trace_epoch = std::chrono::steady_clock::now();
  const BatchResult result = engine.Run(queries, options);

  ASSERT_EQ(result.query_start_ns.size(), queries.size());
  ASSERT_EQ(result.query_end_ns.size(), queries.size());
  ASSERT_EQ(result.query_counters.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_GT(result.query_start_ns[i], 0u) << i;
    EXPECT_GE(result.query_end_ns[i], result.query_start_ns[i]) << i;
    if (QueryCounters::kEnabled && queries[i].first != queries[i].second) {
      EXPECT_GT(result.query_counters[i].vertices_settled, 0u) << i;
    }
  }

  // Without record_per_query the vectors stay empty (no hidden cost).
  const BatchResult plain = engine.Run(queries);
  EXPECT_TRUE(plain.query_start_ns.empty());
  EXPECT_TRUE(plain.query_end_ns.empty());
  EXPECT_TRUE(plain.query_counters.empty());
}

TEST(TracerTest, ConcurrentStopExporterJoinsExactlyOnce) {
  if constexpr (!kTracingCompiledIn) GTEST_SKIP();
  // Regression: StopExporter used to clear exporter_running_ only AFTER
  // joining, so two concurrent stops (an explicit stop racing the
  // destructor) both passed the running check and both joined the
  // exporter thread — the second join is std::terminate. The fix claims
  // the thread handle under exporter_mu_, so exactly one caller joins.
  for (int round = 0; round < 20; ++round) {
    TracerOptions options;
    options.sample_every = 1;
    options.shards = 1;
    Tracer tracer(options);
    const std::string path =
        testing::TempDir() + "/trace_concurrent_stop.jsonl";
    std::string error;
    ASSERT_TRUE(tracer.StartExporter(path, &error)) << error;
    ASSERT_TRUE(tracer.ExporterRunning());

    constexpr size_t kStoppers = 4;
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kStoppers; ++t) {
      threads.emplace_back([&tracer] { tracer.StopExporter(); });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_FALSE(tracer.ExporterRunning());
    // A fresh start after the pile-up must still work.
    ASSERT_TRUE(tracer.StartExporter(path, &error)) << error;
    tracer.StopExporter();
  }
}

TEST(TraceDeathTest, FinishWithOpenSpanDies) {
  if constexpr (!kTracingCompiledIn) GTEST_SKIP();
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        TracerOptions options;
        options.sample_every = 1;
        options.shards = 1;
        Tracer tracer(options);
        const int shard = tracer.AcquireShard();
        RequestTrace trace;
        tracer.StartRequest(&trace);
        TraceSpan span(&trace, TraceStage::kExecute);
        tracer.Finish(shard, &trace);  // span still open: must abort
      },
      "open_spans");
}

}  // namespace
}  // namespace roadnet
