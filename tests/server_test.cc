#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "ch/ch_index.h"
#include "dijkstra/bidirectional.h"
#include "knn/ier.h"
#include "knn/knn_index.h"
#include "poi/poi_set.h"
#include "routing/knn.h"
#include "server/bounded_queue.h"
#include "server/client.h"
#include "server/wire.h"
#include "tests/test_util.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

// --- Wire protocol round trips ---

TEST(Wire, QueryRequestRoundTrips) {
  wire::QueryRequest req;
  req.technique = wire::TechniqueId("ch");
  req.kind = wire::QueryKind::kPath;
  req.source = 12345;
  req.target = 67890;
  req.deadline_micros = 2500;
  const std::string body = wire::EncodeQueryRequest(req);
  EXPECT_EQ(wire::PeekType(body), wire::kQuery);
  const auto decoded = wire::DecodeQueryRequest(body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->technique, req.technique);
  EXPECT_EQ(decoded->kind, req.kind);
  EXPECT_EQ(decoded->source, req.source);
  EXPECT_EQ(decoded->target, req.target);
  EXPECT_EQ(decoded->deadline_micros, req.deadline_micros);
}

TEST(Wire, QueryResponseRoundTripsWithPath) {
  wire::QueryResponse resp;
  resp.status = wire::Status::kOk;
  resp.distance = 424242;
  resp.server_latency_ns = 987654321;
  resp.path = {1, 5, 9, 2};
  const std::string body = wire::EncodeQueryResponse(resp);
  const auto decoded = wire::DecodeQueryResponse(body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, resp.status);
  EXPECT_EQ(decoded->distance, resp.distance);
  EXPECT_EQ(decoded->server_latency_ns, resp.server_latency_ns);
  EXPECT_EQ(decoded->path, resp.path);
}

TEST(Wire, StatsResponseRoundTrips) {
  wire::StatsResponse stats;
  stats.served = 10;
  stats.shed_overloaded = 2;
  stats.shed_deadline = 3;
  stats.distance_count = 9;
  stats.distance_p99_ns = 123456;
  stats.path_p50_ns = 789;
  const std::string body = wire::EncodeStatsResponse(stats);
  const auto decoded = wire::DecodeStatsResponse(body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->served, stats.served);
  EXPECT_EQ(decoded->shed_overloaded, stats.shed_overloaded);
  EXPECT_EQ(decoded->shed_deadline, stats.shed_deadline);
  EXPECT_EQ(decoded->distance_count, stats.distance_count);
  EXPECT_EQ(decoded->distance_p99_ns, stats.distance_p99_ns);
  EXPECT_EQ(decoded->path_p50_ns, stats.path_p50_ns);
}

TEST(Wire, StatsResponseV2RoundTripsGaugesAndStages) {
  wire::StatsResponse stats;
  stats.served = 42;
  stats.queue_depth = 5;
  stats.in_flight_batches = 2;
  stats.open_connections = 7;
  stats.traces_finished = 100;
  stats.traces_captured = 25;
  stats.traces_dropped = 1;
  stats.traces_slow = 3;
  stats.stages.push_back(wire::StageStatWire{3, 100, 1500, 9000});
  stats.stages.push_back(wire::StageStatWire{5, 100, 40000, 220000});
  const std::string body = wire::EncodeStatsResponse(stats);
  const auto decoded = wire::DecodeStatsResponse(body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->served, stats.served);
  EXPECT_EQ(decoded->queue_depth, 5u);
  EXPECT_EQ(decoded->in_flight_batches, 2u);
  EXPECT_EQ(decoded->open_connections, 7u);
  EXPECT_EQ(decoded->traces_finished, 100u);
  EXPECT_EQ(decoded->traces_captured, 25u);
  EXPECT_EQ(decoded->traces_dropped, 1u);
  EXPECT_EQ(decoded->traces_slow, 3u);
  ASSERT_EQ(decoded->stages.size(), 2u);
  EXPECT_EQ(decoded->stages[0].stage, 3u);
  EXPECT_EQ(decoded->stages[0].count, 100u);
  EXPECT_EQ(decoded->stages[0].p50_ns, 1500u);
  EXPECT_EQ(decoded->stages[0].p99_ns, 9000u);
  EXPECT_EQ(decoded->stages[1].stage, 5u);
  EXPECT_EQ(decoded->stages[1].p99_ns, 220000u);

  // A reply stamped with an unknown stats version is rejected, not
  // misparsed: byte 1 is the version.
  std::string wrong_version = body;
  wrong_version[1] = static_cast<char>(wire::kStatsVersion + 1);
  EXPECT_FALSE(wire::DecodeStatsResponse(wrong_version).has_value());

  // Truncation anywhere (including mid stage entry) is rejected.
  for (size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_FALSE(wire::DecodeStatsResponse(body.substr(0, cut)).has_value())
        << "cut " << cut;
  }
  EXPECT_FALSE(wire::DecodeStatsResponse(body + "x").has_value());
}

TEST(Wire, QueryV2FramesRoundTripWithRequestId) {
  wire::QueryRequest req;
  req.request_id = 0xdeadbeefcafef00dull;
  req.technique = wire::TechniqueId("ch");
  req.kind = wire::QueryKind::kPath;
  req.source = 111;
  req.target = 222;
  req.deadline_micros = 333;
  const std::string body = wire::EncodeQueryRequestV2(req);
  EXPECT_EQ(wire::PeekType(body), wire::kQueryV2);
  const auto decoded = wire::DecodeQueryRequestV2(body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->request_id, req.request_id);
  EXPECT_EQ(decoded->technique, req.technique);
  EXPECT_EQ(decoded->kind, req.kind);
  EXPECT_EQ(decoded->source, req.source);
  EXPECT_EQ(decoded->target, req.target);
  EXPECT_EQ(decoded->deadline_micros, req.deadline_micros);
  // The codecs are version-strict: a v1 frame is not a v2 frame and
  // vice versa, even though both would have plausible lengths.
  EXPECT_FALSE(wire::DecodeQueryRequestV2(
                   wire::EncodeQueryRequest(req)).has_value());
  EXPECT_FALSE(wire::DecodeQueryRequest(body).has_value());
  for (size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_FALSE(wire::DecodeQueryRequestV2(body.substr(0, cut)).has_value())
        << "cut " << cut;
  }
  EXPECT_FALSE(wire::DecodeQueryRequestV2(body + "x").has_value());

  wire::QueryResponse resp;
  resp.request_id = 42;
  resp.status = wire::Status::kOk;
  resp.distance = 777;
  resp.server_latency_ns = 888;
  resp.path = {1, 2, 3};
  const std::string rbody = wire::EncodeQueryResponseV2(resp);
  EXPECT_EQ(wire::PeekType(rbody), wire::kQueryReplyV2);
  const auto rdec = wire::DecodeQueryResponseV2(rbody);
  ASSERT_TRUE(rdec.has_value());
  EXPECT_EQ(rdec->request_id, 42u);
  EXPECT_EQ(rdec->distance, 777u);
  EXPECT_EQ(rdec->path, resp.path);
  EXPECT_FALSE(wire::DecodeQueryResponseV2(
                   wire::EncodeQueryResponse(resp)).has_value());
  EXPECT_FALSE(
      wire::DecodeQueryResponseV2(rbody.substr(0, rbody.size() - 4))
          .has_value());
  EXPECT_FALSE(wire::DecodeQueryResponseV2(rbody + "zzzz").has_value());
}

TEST(Wire, StatsResponseV3GaugesRoundTrip) {
  wire::StatsResponse stats;
  stats.served = 7;
  stats.write_queue_bytes = 123456;
  stats.idle_reaped = 9;
  stats.loop_connections = {3, 0, 5};
  stats.open_connections = 8;
  const std::string body = wire::EncodeStatsResponse(stats);
  const auto decoded = wire::DecodeStatsResponse(body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->write_queue_bytes, 123456u);
  EXPECT_EQ(decoded->idle_reaped, 9u);
  EXPECT_EQ(decoded->loop_connections, (std::vector<uint64_t>{3, 0, 5}));
  for (size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_FALSE(wire::DecodeStatsResponse(body.substr(0, cut)).has_value())
        << "cut " << cut;
  }
}

TEST(Wire, TraceConfigRoundTripsPartialKnobs) {
  {
    wire::TraceConfigRequest req;
    req.sample_every = 10;
    req.slow_micros = 2500;
    const auto decoded =
        wire::DecodeTraceConfigRequest(wire::EncodeTraceConfigRequest(req));
    ASSERT_TRUE(decoded.has_value());
    ASSERT_TRUE(decoded->sample_every.has_value());
    ASSERT_TRUE(decoded->slow_micros.has_value());
    EXPECT_EQ(*decoded->sample_every, 10u);
    EXPECT_EQ(*decoded->slow_micros, 2500u);
  }
  {
    wire::TraceConfigRequest req;  // neither knob: a pure read
    const auto decoded =
        wire::DecodeTraceConfigRequest(wire::EncodeTraceConfigRequest(req));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_FALSE(decoded->sample_every.has_value());
    EXPECT_FALSE(decoded->slow_micros.has_value());
  }
  {
    wire::TraceConfigRequest req;
    req.slow_micros = 0;  // 0 is meaningful (capture everything)
    const std::string body = wire::EncodeTraceConfigRequest(req);
    const auto decoded = wire::DecodeTraceConfigRequest(body);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_FALSE(decoded->sample_every.has_value());
    ASSERT_TRUE(decoded->slow_micros.has_value());
    EXPECT_EQ(*decoded->slow_micros, 0u);

    // An undefined mask bit is a malformed frame.
    std::string bad_mask = body;
    bad_mask[1] = 0x7;
    EXPECT_FALSE(wire::DecodeTraceConfigRequest(bad_mask).has_value());
  }

  wire::TraceConfigResponse resp;
  resp.sample_every = 4;
  resp.slow_micros = kTraceSlowDisabled;
  const auto decoded =
      wire::DecodeTraceConfigResponse(wire::EncodeTraceConfigResponse(resp));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sample_every, 4u);
  EXPECT_EQ(decoded->slow_micros, kTraceSlowDisabled);
}

TEST(Wire, RejectsTruncatedAndTrailingBytes) {
  wire::QueryRequest req;
  std::string body = wire::EncodeQueryRequest(req);
  for (size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_FALSE(
        wire::DecodeQueryRequest(body.substr(0, cut)).has_value())
        << "cut " << cut;
  }
  EXPECT_FALSE(wire::DecodeQueryRequest(body + "x").has_value());

  wire::QueryResponse resp;
  resp.path = {1, 2, 3};
  std::string rbody = wire::EncodeQueryResponse(resp);
  // Declared path length no longer matches the remaining bytes.
  EXPECT_FALSE(
      wire::DecodeQueryResponse(rbody.substr(0, rbody.size() - 4))
          .has_value());
  EXPECT_FALSE(wire::DecodeQueryResponse(rbody + "zzzz").has_value());
}

TEST(Wire, TechniqueIdsRoundTrip) {
  for (const char* name : {"any", "bidi", "ch", "alt", "hl"}) {
    EXPECT_EQ(wire::TechniqueName(wire::TechniqueId(name)), name);
  }
  EXPECT_EQ(wire::TechniqueId("no-such-technique"), wire::kAnyTechnique);
}

TEST(Wire, KnnRequestRoundTrips) {
  wire::KnnRequest req;
  req.method = wire::KnnMethod::kIer;
  req.category = 3;
  req.k = 17;
  req.source = 987654;
  req.deadline_micros = 4200;
  const std::string body = wire::EncodeKnnRequest(req);
  EXPECT_EQ(wire::PeekType(body), wire::kKnnQuery);
  const auto decoded = wire::DecodeKnnRequest(body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->method, req.method);
  EXPECT_EQ(decoded->category, req.category);
  EXPECT_EQ(decoded->k, req.k);
  EXPECT_EQ(decoded->source, req.source);
  EXPECT_EQ(decoded->deadline_micros, req.deadline_micros);

  // An undefined method byte is a malformed frame, not a surprise enum.
  std::string bad_method = body;
  bad_method[1] = 0x7;
  EXPECT_FALSE(wire::DecodeKnnRequest(bad_method).has_value());

  for (size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_FALSE(wire::DecodeKnnRequest(body.substr(0, cut)).has_value())
        << "cut " << cut;
  }
  EXPECT_FALSE(wire::DecodeKnnRequest(body + "x").has_value());
}

TEST(Wire, OneToManyRequestRoundTrips) {
  wire::OneToManyRequest req;
  req.category = 2;
  req.source = 31337;
  req.deadline_micros = 900;
  const std::string body = wire::EncodeOneToManyRequest(req);
  EXPECT_EQ(wire::PeekType(body), wire::kOneToManyQuery);
  const auto decoded = wire::DecodeOneToManyRequest(body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->category, req.category);
  EXPECT_EQ(decoded->source, req.source);
  EXPECT_EQ(decoded->deadline_micros, req.deadline_micros);
  for (size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_FALSE(
        wire::DecodeOneToManyRequest(body.substr(0, cut)).has_value())
        << "cut " << cut;
  }
  EXPECT_FALSE(wire::DecodeOneToManyRequest(body + "x").has_value());
}

TEST(Wire, KnnResponseRoundTripsUnderBothReplyTypes) {
  wire::KnnResponse resp;
  resp.status = wire::Status::kOk;
  resp.server_latency_ns = 123456789;
  resp.entries = {{42, 1000}, {7, 2500}, {99, 2500}};
  for (const wire::MessageType reply_type :
       {wire::kKnnReply, wire::kOneToManyReply}) {
    const std::string body = wire::EncodeKnnResponse(reply_type, resp);
    EXPECT_EQ(wire::PeekType(body), reply_type);
    const auto decoded = wire::DecodeKnnResponse(reply_type, body);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->status, resp.status);
    EXPECT_EQ(decoded->server_latency_ns, resp.server_latency_ns);
    EXPECT_EQ(decoded->entries, resp.entries);
    // The wrong reply type must not decode a frame of the other kind.
    const wire::MessageType other = reply_type == wire::kKnnReply
                                        ? wire::kOneToManyReply
                                        : wire::kKnnReply;
    EXPECT_FALSE(wire::DecodeKnnResponse(other, body).has_value());
    // The declared entry count must match the remaining bytes exactly.
    EXPECT_FALSE(wire::DecodeKnnResponse(
                     reply_type, body.substr(0, body.size() - 1))
                     .has_value());
    EXPECT_FALSE(
        wire::DecodeKnnResponse(reply_type, body + "zzzz").has_value());
  }

  // An empty entry list with kOk round-trips: a complete OK answer.
  resp.entries.clear();
  const std::string body = wire::EncodeKnnResponse(wire::kKnnReply, resp);
  const auto decoded = wire::DecodeKnnResponse(wire::kKnnReply, body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, wire::Status::kOk);
  EXPECT_TRUE(decoded->entries.empty());
}

TEST(Wire, KnnMethodNamesRoundTrip) {
  EXPECT_STREQ(wire::KnnMethodName(wire::KnnMethod::kBucketCh), "bucket-ch");
  EXPECT_STREQ(wire::KnnMethodName(wire::KnnMethod::kIer), "ier");
}

// --- Bounded queue semantics ---

TEST(BoundedQueue, ShedsWhenFullAndDrainsAfterClose) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full => immediate shed
  std::vector<int> batch;
  EXPECT_TRUE(q.PopBatch(&batch, 10));
  EXPECT_EQ(batch, (std::vector<int>{1, 2}));
  EXPECT_TRUE(q.TryPush(4));
  q.Close();
  EXPECT_FALSE(q.TryPush(5));  // closed => rejected
  EXPECT_TRUE(q.PopBatch(&batch, 10));  // admitted before Close: drained
  EXPECT_EQ(batch, (std::vector<int>{4}));
  EXPECT_FALSE(q.PopBatch(&batch, 10));  // closed + empty: consumer exits
}

TEST(BoundedQueue, PopBatchRespectsLimit) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.TryPush(i));
  std::vector<int> batch;
  EXPECT_TRUE(q.PopBatch(&batch, 3));
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_TRUE(q.PopBatch(&batch, 3));
  EXPECT_EQ(batch.size(), 2u);
}

// --- End-to-end over loopback ---

// An index whose every query takes a configurable wall time: makes
// queue-full, deadline, and drain interleavings deterministic.
class SlowIndex : public PathIndex {
 public:
  SlowIndex(const Graph& g, std::chrono::milliseconds delay)
      : inner_(g), delay_(delay) {}

  std::string Name() const override { return "SlowBiDi"; }
  std::unique_ptr<QueryContext> NewContext() const override {
    return inner_.NewContext();
  }
  Distance DistanceQuery(QueryContext* ctx, VertexId s,
                         VertexId t) const override {
    std::this_thread::sleep_for(delay_);
    return inner_.DistanceQuery(ctx, s, t);
  }
  Path PathQuery(QueryContext* ctx, VertexId s, VertexId t) const override {
    std::this_thread::sleep_for(delay_);
    return inner_.PathQuery(ctx, s, t);
  }
  size_t IndexBytes() const override { return inner_.IndexBytes(); }

 private:
  BidirectionalDijkstra inner_;
  std::chrono::milliseconds delay_;
};

std::unique_ptr<BlockingClient> MustConnect(uint16_t port) {
  std::string error;
  auto client = BlockingClient::Connect("127.0.0.1", port, &error);
  EXPECT_NE(client, nullptr) << error;
  return client;
}

TEST(QueryServer, AnswersDistanceAndPathQueriesCorrectly) {
  const Graph g = TestNetwork(400, 3);
  ChIndex ch(g);
  QueryServer server(ch, wire::TechniqueId("ch"), g.NumVertices(), {});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  auto client = MustConnect(server.Port());
  ASSERT_NE(client, nullptr);
  Dijkstra oracle(g);
  for (auto [s, t] : RandomPairs(g, 50, 23)) {
    const Distance truth = oracle.Run(s, t);
    wire::QueryRequest req;
    req.source = s;
    req.target = t;
    wire::QueryResponse resp;
    ASSERT_TRUE(client->Query(req, &resp, &error)) << error;
    if (truth == kInfDistance) {
      EXPECT_EQ(resp.status, wire::Status::kUnreachable);
    } else {
      EXPECT_EQ(resp.status, wire::Status::kOk);
      EXPECT_EQ(resp.distance, truth);
      EXPECT_TRUE(resp.path.empty());  // distance queries carry no path
    }

    req.kind = wire::QueryKind::kPath;
    ASSERT_TRUE(client->Query(req, &resp, &error)) << error;
    if (truth != kInfDistance) {
      ASSERT_EQ(resp.status, wire::Status::kOk);
      ASSERT_FALSE(resp.path.empty());
      EXPECT_EQ(resp.path.front(), s);
      EXPECT_EQ(resp.path.back(), t);
      EXPECT_TRUE(IsValidPath(g, resp.path));
      EXPECT_EQ(PathWeight(g, resp.path), truth);
    }
  }
  server.Shutdown();
}

TEST(QueryServer, RejectsBadRequests) {
  const Graph g = TestNetwork(200, 5);
  BidirectionalDijkstra index(g);
  QueryServer server(index, wire::TechniqueId("bidi"), g.NumVertices(), {});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  auto client = MustConnect(server.Port());
  ASSERT_NE(client, nullptr);

  wire::QueryRequest req;
  req.source = g.NumVertices();  // out of range
  req.target = 0;
  wire::QueryResponse resp;
  ASSERT_TRUE(client->Query(req, &resp, &error)) << error;
  EXPECT_EQ(resp.status, wire::Status::kBadRequest);

  req.source = 0;
  req.technique = wire::TechniqueId("ch");  // server hosts bidi
  ASSERT_TRUE(client->Query(req, &resp, &error)) << error;
  EXPECT_EQ(resp.status, wire::Status::kBadRequest);

  // kAnyTechnique matches whatever the server hosts.
  req.technique = wire::kAnyTechnique;
  ASSERT_TRUE(client->Query(req, &resp, &error)) << error;
  EXPECT_NE(resp.status, wire::Status::kBadRequest);

  const wire::StatsResponse stats = server.Stats();
  EXPECT_EQ(stats.bad_requests, 2u);
  server.Shutdown();
}

TEST(QueryServer, ShedsWithOverloadedWhenQueueFull) {
  const Graph g = TestNetwork(100, 7);
  SlowIndex slow(g, std::chrono::milliseconds(300));
  ServerOptions options;
  options.queue_capacity = 1;
  options.engine_threads = 1;
  options.max_dispatch_batch = 1;
  QueryServer server(slow, wire::kAnyTechnique, g.NumVertices(), options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  const uint16_t port = server.Port();

  // First query occupies the engine; the dispatcher pops it almost
  // immediately, leaving the queue empty for the second.
  std::thread first([&] {
    auto c = MustConnect(port);
    if (c == nullptr) return;
    wire::QueryRequest req;
    wire::QueryResponse resp;
    std::string err;
    EXPECT_TRUE(c->Query(req, &resp, &err)) << err;
    EXPECT_EQ(resp.status, wire::Status::kOk);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Second query sits in the queue (capacity 1) while the engine sleeps.
  std::thread second([&] {
    auto c = MustConnect(port);
    if (c == nullptr) return;
    wire::QueryRequest req;
    wire::QueryResponse resp;
    std::string err;
    EXPECT_TRUE(c->Query(req, &resp, &err)) << err;
    EXPECT_EQ(resp.status, wire::Status::kOk);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Third arrives with the queue full: explicit OVERLOADED, immediately.
  auto c3 = MustConnect(port);
  ASSERT_NE(c3, nullptr);
  wire::QueryRequest req;
  wire::QueryResponse resp;
  ASSERT_TRUE(c3->Query(req, &resp, &error)) << error;
  EXPECT_EQ(resp.status, wire::Status::kOverloaded);

  first.join();
  second.join();
  EXPECT_GE(server.Stats().shed_overloaded, 1u);
  server.Shutdown();
}

TEST(QueryServer, ShedsQueuedRequestsPastTheirDeadline) {
  const Graph g = TestNetwork(100, 9);
  SlowIndex slow(g, std::chrono::milliseconds(300));
  ServerOptions options;
  options.engine_threads = 1;
  options.max_dispatch_batch = 1;
  QueryServer server(slow, wire::kAnyTechnique, g.NumVertices(), options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  const uint16_t port = server.Port();

  // Occupy the engine for 300ms.
  std::thread occupant([&] {
    auto c = MustConnect(port);
    if (c == nullptr) return;
    wire::QueryRequest req;
    wire::QueryResponse resp;
    std::string err;
    EXPECT_TRUE(c->Query(req, &resp, &err)) << err;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // This request waits ~200ms in the queue but only budgets 10ms: the
  // dispatcher sheds it without running it.
  auto c2 = MustConnect(port);
  ASSERT_NE(c2, nullptr);
  wire::QueryRequest req;
  req.deadline_micros = 10000;
  wire::QueryResponse resp;
  ASSERT_TRUE(c2->Query(req, &resp, &error)) << error;
  EXPECT_EQ(resp.status, wire::Status::kDeadlineExceeded);

  occupant.join();
  EXPECT_GE(server.Stats().shed_deadline, 1u);
  server.Shutdown();
}

TEST(QueryServer, DrainsInFlightRequestsOnShutdown) {
  const Graph g = TestNetwork(100, 11);
  SlowIndex slow(g, std::chrono::milliseconds(200));
  ServerOptions options;
  options.engine_threads = 1;
  QueryServer server(slow, wire::kAnyTechnique, g.NumVertices(), options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  const uint16_t port = server.Port();

  // A request that will still be running when the drain starts.
  std::thread in_flight([&] {
    auto c = MustConnect(port);
    if (c == nullptr) return;
    wire::QueryRequest req;
    wire::QueryResponse resp;
    std::string err;
    // Drain must answer this, not drop it.
    EXPECT_TRUE(c->Query(req, &resp, &err)) << err;
    EXPECT_TRUE(resp.status == wire::Status::kOk ||
                resp.status == wire::Status::kUnreachable)
        << wire::StatusName(resp.status);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Admin hangs up the server mid-query.
  auto admin = MustConnect(port);
  ASSERT_NE(admin, nullptr);
  ASSERT_TRUE(admin->SendShutdown(&error)) << error;
  EXPECT_TRUE(
      server.WaitForShutdownRequest(std::chrono::milliseconds(2000)));

  // New requests on the draining server are refused explicitly (until
  // Shutdown() closes the connections).
  wire::QueryRequest req;
  wire::QueryResponse resp;
  if (admin->Query(req, &resp, &error)) {
    EXPECT_EQ(resp.status, wire::Status::kShuttingDown);
  }

  server.Shutdown();
  in_flight.join();
}

TEST(QueryServer, StatsCountServedQueries) {
  const Graph g = TestNetwork(200, 13);
  BidirectionalDijkstra index(g);
  QueryServer server(index, wire::kAnyTechnique, g.NumVertices(), {});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  auto client = MustConnect(server.Port());
  ASSERT_NE(client, nullptr);
  for (auto [s, t] : RandomPairs(g, 20, 31)) {
    wire::QueryRequest req;
    req.source = s;
    req.target = t;
    wire::QueryResponse resp;
    ASSERT_TRUE(client->Query(req, &resp, &error)) << error;
  }
  wire::StatsResponse stats;
  ASSERT_TRUE(client->GetStats(&stats, &error)) << error;
  EXPECT_EQ(stats.served, 20u);
  EXPECT_EQ(stats.distance_count, 20u);
  EXPECT_EQ(stats.path_count, 0u);
  EXPECT_EQ(stats.connections_accepted, 1u);
  server.Shutdown();
}

TEST(QueryServer, EnforcesConnectionCap) {
  const Graph g = TestNetwork(100, 17);
  BidirectionalDijkstra index(g);
  ServerOptions options;
  options.max_connections = 2;
  QueryServer server(index, wire::kAnyTechnique, g.NumVertices(), options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  auto c1 = MustConnect(server.Port());
  auto c2 = MustConnect(server.Port());
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(c2, nullptr);
  // Keep both counted: run one query each so the handlers are live.
  wire::QueryRequest req;
  wire::QueryResponse resp;
  ASSERT_TRUE(c1->Query(req, &resp, &error)) << error;
  ASSERT_TRUE(c2->Query(req, &resp, &error)) << error;

  // The third connection is accepted by the kernel but closed by the
  // server at the cap: its first round trip fails.
  auto c3 = BlockingClient::Connect("127.0.0.1", server.Port(), &error);
  bool rejected = c3 == nullptr;
  if (!rejected) {
    rejected = !c3->Query(req, &resp, &error);
  }
  EXPECT_TRUE(rejected);
  EXPECT_GE(server.Stats().connections_rejected, 1u);
  server.Shutdown();
}

TEST(QueryServer, TracedRunWritesJsonlAndServesStageStats) {
  if constexpr (!kTracingCompiledIn) GTEST_SKIP();
  const Graph g = TestNetwork(200, 21);
  BidirectionalDijkstra index(g);
  ServerOptions options;
  options.trace_sample_every = 1;  // capture every request
  options.trace_out = testing::TempDir() + "/server_test_traces.jsonl";
  QueryServer server(index, wire::kAnyTechnique, g.NumVertices(), options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  auto client = MustConnect(server.Port());
  ASSERT_NE(client, nullptr);
  for (auto [s, t] : RandomPairs(g, 25, 37)) {
    wire::QueryRequest req;
    req.source = s;
    req.target = t;
    wire::QueryResponse resp;
    ASSERT_TRUE(client->Query(req, &resp, &error)) << error;
  }

  // Live introspection mid-run: this connection is still open, and the
  // tracer has finished one trace per query.
  wire::StatsResponse stats;
  ASSERT_TRUE(client->GetStats(&stats, &error)) << error;
  EXPECT_GE(stats.open_connections, 1u);
  EXPECT_GE(stats.traces_finished, 25u);
  EXPECT_GE(stats.traces_captured, 25u);
  ASSERT_FALSE(stats.stages.empty());
  bool saw_execute = false, saw_queue_wait = false, saw_reply = false;
  for (const wire::StageStatWire& st : stats.stages) {
    if (st.stage == static_cast<uint8_t>(TraceStage::kExecute)) {
      saw_execute = st.count >= 25;
    }
    if (st.stage == static_cast<uint8_t>(TraceStage::kQueueWait)) {
      saw_queue_wait = st.count >= 25;
    }
    if (st.stage == static_cast<uint8_t>(TraceStage::kReplyWrite)) {
      saw_reply = st.count >= 25;
    }
  }
  EXPECT_TRUE(saw_execute);
  EXPECT_TRUE(saw_queue_wait);
  EXPECT_TRUE(saw_reply);

  client.reset();
  server.Shutdown();  // stops the exporter: the file is complete

  std::FILE* f = std::fopen(options.trace_out.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  for (int c = std::fgetc(f); c != EOF; c = std::fgetc(f)) {
    content.push_back(static_cast<char>(c));
  }
  std::fclose(f);
  std::remove(options.trace_out.c_str());

  size_t lines = 0;
  for (char c : content) lines += c == '\n';
  EXPECT_GE(lines, 25u);
  // The full lifecycle shows up: the first request carries the accept
  // stage, every request carries frame_read through reply_write.
  EXPECT_NE(content.find("\"stage\":\"accept\""), std::string::npos);
  for (const char* stage : {"frame_read", "enqueue", "queue_wait",
                            "batch_assembly", "execute", "reply_write"}) {
    EXPECT_NE(content.find(std::string("\"stage\":\"") + stage + "\""),
              std::string::npos)
        << stage;
  }
  EXPECT_NE(content.find("\"status\":\"OK\""), std::string::npos);
}

TEST(QueryServer, TraceConfigOverWireTakesEffect) {
  if constexpr (!kTracingCompiledIn) GTEST_SKIP();
  const Graph g = TestNetwork(200, 23);
  BidirectionalDijkstra index(g);
  // Tracing starts OFF (defaults): requests run untraced.
  QueryServer server(index, wire::kAnyTechnique, g.NumVertices(), {});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  auto client = MustConnect(server.Port());
  ASSERT_NE(client, nullptr);

  wire::QueryRequest req;
  wire::QueryResponse resp;
  ASSERT_TRUE(client->Query(req, &resp, &error)) << error;
  wire::StatsResponse stats;
  ASSERT_TRUE(client->GetStats(&stats, &error)) << error;
  EXPECT_EQ(stats.traces_finished, 0u);

  // Flip sampling on over the wire; the ack echoes the live settings.
  wire::TraceConfigRequest cfg;
  cfg.sample_every = 2;
  wire::TraceConfigResponse effective;
  ASSERT_TRUE(client->ConfigureTracing(cfg, &effective, &error)) << error;
  EXPECT_EQ(effective.sample_every, 2u);
  EXPECT_EQ(effective.slow_micros, kTraceSlowDisabled);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client->Query(req, &resp, &error)) << error;
  }
  ASSERT_TRUE(client->GetStats(&stats, &error)) << error;
  EXPECT_GE(stats.traces_finished, 10u);
  EXPECT_GE(stats.traces_captured, 5u);  // every 2nd head-sampled

  // And off again: subsequent requests leave the counters untouched.
  cfg.sample_every = 0;
  ASSERT_TRUE(client->ConfigureTracing(cfg, &effective, &error)) << error;
  EXPECT_EQ(effective.sample_every, 0u);
  ASSERT_TRUE(client->GetStats(&stats, &error)) << error;
  const uint64_t frozen = stats.traces_finished;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client->Query(req, &resp, &error)) << error;
  }
  ASSERT_TRUE(client->GetStats(&stats, &error)) << error;
  EXPECT_EQ(stats.traces_finished, frozen);
  server.Shutdown();
}

TEST(QueryServer, AnswersKnnAndOneToManyCorrectly) {
  const Graph g = TestNetwork(400, 27);
  ChIndex ch(g);
  PoiConfig config;
  config.categories = {{"restaurant", 0.03}, {"fuel", 0.005},
                       {"empty", 0.0}};
  config.seed = 31;
  const PoiSet pois = PoiSet::Generate(g, config);
  KnnBucketIndex bucket(ch, pois);
  IerKnnIndex ier(g, ch, pois);
  QueryServer server(ch, wire::TechniqueId("ch"), g.NumVertices(), {},
                     KnnServing{&pois, &bucket, &ier});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  auto client = MustConnect(server.Port());
  ASSERT_NE(client, nullptr);

  std::vector<std::vector<VertexId>> cat_vecs;
  for (uint32_t c = 0; c < pois.NumCategories(); ++c) {
    const auto span = pois.Vertices(c);
    cat_vecs.emplace_back(span.begin(), span.end());
  }

  Rng rng(55);
  for (int qi = 0; qi < 60; ++qi) {
    const auto s = static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
    const auto c =
        static_cast<uint32_t>(rng.NextBelow(pois.NumCategories()));
    const uint32_t k = 1 + static_cast<uint32_t>(rng.NextBelow(20));
    const auto truth = KnnByDijkstra(g, cat_vecs[c], s, k);

    wire::KnnRequest req;
    req.method = qi % 2 == 0 ? wire::KnnMethod::kBucketCh
                             : wire::KnnMethod::kIer;
    req.category = c;
    req.k = k;
    req.source = s;
    wire::KnnResponse resp;
    ASSERT_TRUE(client->Knn(req, &resp, &error)) << error;
    ASSERT_EQ(resp.status, wire::Status::kOk);
    ASSERT_EQ(resp.entries.size(), truth.size());
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ(resp.entries[i].first, truth[i].poi);
      EXPECT_EQ(resp.entries[i].second, truth[i].dist);
    }

    wire::OneToManyRequest otm;
    otm.category = c;
    otm.source = s;
    const auto all = KnnByDijkstra(g, cat_vecs[c], s, cat_vecs[c].size());
    ASSERT_TRUE(client->OneToMany(otm, &resp, &error)) << error;
    ASSERT_EQ(resp.status, wire::Status::kOk);
    ASSERT_EQ(resp.entries.size(), all.size());
    for (size_t i = 0; i < all.size(); ++i) {
      EXPECT_EQ(resp.entries[i].first, all[i].poi);
      EXPECT_EQ(resp.entries[i].second, all[i].dist);
    }
  }

  // The kNN latency histograms show up in the stats snapshot.
  EXPECT_GT(server.Stats().served, 0u);
  server.Shutdown();
}

TEST(QueryServer, RejectsBadKnnRequests) {
  const Graph g = TestNetwork(200, 29);
  ChIndex ch(g);
  PoiConfig config;
  config.categories = {{"restaurant", 0.05}};
  config.seed = 33;
  const PoiSet pois = PoiSet::Generate(g, config);
  KnnBucketIndex bucket(ch, pois);
  // No IER backend: ier-method requests must be rejected cleanly.
  QueryServer server(ch, wire::TechniqueId("ch"), g.NumVertices(), {},
                     KnnServing{&pois, &bucket, nullptr});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  auto client = MustConnect(server.Port());
  ASSERT_NE(client, nullptr);

  wire::KnnRequest req;
  req.k = 3;
  req.source = g.NumVertices();  // out of range
  wire::KnnResponse resp;
  ASSERT_TRUE(client->Knn(req, &resp, &error)) << error;
  EXPECT_EQ(resp.status, wire::Status::kBadRequest);

  req.source = 0;
  req.category = pois.NumCategories();  // out of range
  ASSERT_TRUE(client->Knn(req, &resp, &error)) << error;
  EXPECT_EQ(resp.status, wire::Status::kBadRequest);

  req.category = 0;
  req.method = wire::KnnMethod::kIer;  // backend absent
  ASSERT_TRUE(client->Knn(req, &resp, &error)) << error;
  EXPECT_EQ(resp.status, wire::Status::kBadRequest);

  req.method = wire::KnnMethod::kBucketCh;  // valid again
  ASSERT_TRUE(client->Knn(req, &resp, &error)) << error;
  EXPECT_EQ(resp.status, wire::Status::kOk);

  wire::OneToManyRequest otm;
  otm.category = 1;  // out of range
  otm.source = 0;
  ASSERT_TRUE(client->OneToMany(otm, &resp, &error)) << error;
  EXPECT_EQ(resp.status, wire::Status::kBadRequest);

  EXPECT_GE(server.Stats().bad_requests, 4u);
  server.Shutdown();
}

TEST(QueryServer, KnnDisabledServerRejectsKnnFrames) {
  const Graph g = TestNetwork(100, 31);
  BidirectionalDijkstra index(g);
  QueryServer server(index, wire::kAnyTechnique, g.NumVertices(), {});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  auto client = MustConnect(server.Port());
  ASSERT_NE(client, nullptr);

  wire::KnnRequest req;
  req.k = 1;
  wire::KnnResponse resp;
  ASSERT_TRUE(client->Knn(req, &resp, &error)) << error;
  EXPECT_EQ(resp.status, wire::Status::kBadRequest);

  wire::OneToManyRequest otm;
  ASSERT_TRUE(client->OneToMany(otm, &resp, &error)) << error;
  EXPECT_EQ(resp.status, wire::Status::kBadRequest);

  // Point queries still work on the same connection.
  wire::QueryRequest q;
  wire::QueryResponse qresp;
  ASSERT_TRUE(client->Query(q, &qresp, &error)) << error;
  EXPECT_NE(qresp.status, wire::Status::kBadRequest);
  server.Shutdown();
}

// Connects with a pinned-small SO_RCVBUF (set before the handshake so
// the advertised window stays small): keeps the kernel from absorbing
// unread replies, which would hide the server's write queue.
ScopedFd RawConnectSmallBuffers(uint16_t port, int rcvbuf) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  if (rcvbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return ScopedFd(fd);
}

TEST(QueryServer, PipelinedRequestsCompleteOutOfOrderAndMatchById) {
  const Graph g = TestNetwork(300, 41);
  // Every query sleeps 100ms: while request 0 occupies the engine, the
  // rest of the burst lands in the queue and is popped as one batch.
  SlowIndex slow(g, std::chrono::milliseconds(100));
  ServerOptions options;
  options.engine_threads = 1;
  QueryServer server(slow, wire::kAnyTechnique, g.NumVertices(), options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  std::string perr;
  auto pipe = PipelinedClient::Connect("127.0.0.1", server.Port(), &perr);
  ASSERT_NE(pipe, nullptr) << perr;

  // Send order: 0=path, then alternating path/distance. Requests 1..4
  // share a dispatch batch, whose distance sub-batch runs before its
  // path sub-batch — so replies 2 and 4 overtake 1 and 3.
  const auto pairs = RandomPairs(g, 5, 43);
  Dijkstra oracle(g);
  std::vector<uint64_t> send_order;
  for (uint64_t i = 0; i < pairs.size(); ++i) {
    wire::QueryRequest req;
    req.request_id = 1000 + i;
    req.kind = i % 2 == 0 ? wire::QueryKind::kPath
                          : wire::QueryKind::kDistance;
    req.source = pairs[i].first;
    req.target = pairs[i].second;
    ASSERT_TRUE(pipe->Send(req, &perr)) << perr;
    send_order.push_back(req.request_id);
  }

  // While the pipelined burst is in flight, an old-protocol client on a
  // second connection is still served: the frame versions coexist.
  {
    auto v1 = MustConnect(server.Port());
    ASSERT_NE(v1, nullptr);
    wire::QueryRequest req;
    req.source = pairs[0].first;
    req.target = pairs[0].second;
    wire::QueryResponse resp;
    ASSERT_TRUE(v1->Query(req, &resp, &error)) << error;
    EXPECT_NE(resp.status, wire::Status::kBadRequest);
  }

  std::vector<uint64_t> arrival_order;
  std::map<uint64_t, wire::QueryResponse> by_id;
  for (size_t i = 0; i < pairs.size(); ++i) {
    wire::QueryResponse resp;
    ASSERT_TRUE(pipe->Recv(&resp, &perr)) << perr;
    arrival_order.push_back(resp.request_id);
    by_id[resp.request_id] = std::move(resp);
  }

  // Every request answered exactly once, matched by id, correct result.
  ASSERT_EQ(by_id.size(), pairs.size());
  for (uint64_t i = 0; i < pairs.size(); ++i) {
    const auto it = by_id.find(1000 + i);
    ASSERT_NE(it, by_id.end()) << "request " << i << " unanswered";
    const wire::QueryResponse& resp = it->second;
    const Distance truth = oracle.Run(pairs[i].first, pairs[i].second);
    if (truth == kInfDistance) {
      EXPECT_EQ(resp.status, wire::Status::kUnreachable);
    } else {
      EXPECT_EQ(resp.status, wire::Status::kOk);
      EXPECT_EQ(resp.distance, truth);
      if (i % 2 == 0) {
        ASSERT_FALSE(resp.path.empty());
        EXPECT_EQ(PathWeight(g, resp.path), truth);
      }
    }
  }
  // The whole point of pipelining: completion order is not send order.
  EXPECT_NE(arrival_order, send_order);

  server.Shutdown();
}

TEST(QueryServer, WriteQueueHardCapShedsOverloaded) {
  const Graph g = TestNetwork(400, 47);
  ChIndex ch(g);
  ServerOptions options;
  options.queue_capacity = 4096;       // admission never the bottleneck
  options.write_queue_soft_cap = 0;    // no read pause: force the hard cap
  options.write_queue_hard_cap = 8192;
  options.sndbuf_bytes = 4096;         // kernel can't hide the queue
  QueryServer server(ch, wire::TechniqueId("ch"), g.NumVertices(), options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  ScopedFd conn = RawConnectSmallBuffers(server.Port(), 4096);
  const auto pairs = RandomPairs(g, 64, 51);

  // Waves of unread path queries: replies pile onto the connection's
  // write queue (the client is not reading), and once it passes the
  // hard cap the server starts shedding inline with OVERLOADED.
  constexpr int kWaves = 60, kPerWave = 10;
  for (int w = 0; w < kWaves; ++w) {
    for (int i = 0; i < kPerWave; ++i) {
      const auto& [s, t] = pairs[(w * kPerWave + i) % pairs.size()];
      wire::QueryRequest req;
      req.request_id = static_cast<uint64_t>(w * kPerWave + i);
      req.kind = wire::QueryKind::kPath;
      req.source = s;
      req.target = t;
      ASSERT_TRUE(WriteFrame(conn.get(), wire::EncodeQueryRequestV2(req)));
    }
    // Let the dispatcher catch up so replies actually accumulate
    // between waves instead of all frames decoding in one burst.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  uint64_t ok = 0, overloaded = 0;
  std::vector<bool> seen(kWaves * kPerWave, false);
  for (int i = 0; i < kWaves * kPerWave; ++i) {
    std::string body;
    bool clean_eof = false;
    ASSERT_TRUE(
        ReadFrame(conn.get(), &body, wire::kMaxFrameBytes, &clean_eof))
        << "reply " << i;
    const auto resp = wire::DecodeQueryResponseV2(body);
    ASSERT_TRUE(resp.has_value());
    ASSERT_LT(resp->request_id, seen.size());
    EXPECT_FALSE(seen[resp->request_id]) << "duplicate reply";
    seen[resp->request_id] = true;
    if (resp->status == wire::Status::kOk) ok++;
    if (resp->status == wire::Status::kOverloaded) overloaded++;
  }
  // Every request was answered — shed ones explicitly — and both
  // outcomes actually occurred.
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
  EXPECT_GE(ok, 1u);
  EXPECT_GE(overloaded, 1u);
  EXPECT_GE(server.Stats().shed_overloaded, overloaded);

  server.Shutdown();
}

TEST(QueryServer, IdleConnectionsAreReapedAndCounted) {
  const Graph g = TestNetwork(100, 53);
  BidirectionalDijkstra index(g);
  ServerOptions options;
  options.idle_timeout_ms = 100;
  QueryServer server(index, wire::kAnyTechnique, g.NumVertices(), options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  auto idle = MustConnect(server.Port());
  ASSERT_NE(idle, nullptr);
  std::this_thread::sleep_for(std::chrono::milliseconds(500));

  // The reaped connection is dead: its next round trip fails.
  wire::QueryRequest req;
  wire::QueryResponse resp;
  EXPECT_FALSE(idle->Query(req, &resp, &error));

  // A fresh connection reads the v3 gauges over the wire.
  auto fresh = MustConnect(server.Port());
  ASSERT_NE(fresh, nullptr);
  wire::StatsResponse stats;
  ASSERT_TRUE(fresh->GetStats(&stats, &error)) << error;
  EXPECT_GE(stats.idle_reaped, 1u);
  ASSERT_FALSE(stats.loop_connections.empty());
  uint64_t per_loop_sum = 0;
  for (const uint64_t n : stats.loop_connections) per_loop_sum += n;
  EXPECT_EQ(per_loop_sum, stats.open_connections);

  server.Shutdown();
}

TEST(QueryServer, SurvivesPeerClosingMidReply) {
  const Graph g = TestNetwork(300, 59);
  ChIndex ch(g);
  QueryServer server(ch, wire::TechniqueId("ch"), g.NumVertices(), {});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  const auto pairs = RandomPairs(g, 20, 61);

  // Abusive clients: send a path query and slam the connection shut
  // (SO_LINGER 0 => RST) before reading the reply. The server's write
  // lands on a dead socket; without MSG_NOSIGNAL that's a SIGPIPE and
  // the whole process dies.
  for (int i = 0; i < 20; ++i) {
    ScopedFd conn = RawConnectSmallBuffers(server.Port(), 0);
    wire::QueryRequest req;
    req.request_id = static_cast<uint64_t>(i);
    req.kind = wire::QueryKind::kPath;
    req.source = pairs[i].first;
    req.target = pairs[i].second;
    ASSERT_TRUE(WriteFrame(conn.get(), wire::EncodeQueryRequestV2(req)));
    const linger hard{1, 0};
    ::setsockopt(conn.get(), SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
    conn.Close();
  }

  // The server is still alive and still serves.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  auto client = MustConnect(server.Port());
  ASSERT_NE(client, nullptr);
  wire::QueryRequest req;
  req.source = pairs[0].first;
  req.target = pairs[0].second;
  wire::QueryResponse resp;
  ASSERT_TRUE(client->Query(req, &resp, &error)) << error;
  EXPECT_NE(resp.status, wire::Status::kBadRequest);

  server.Shutdown();
}

TEST(QueryServer, ShutdownIsIdempotentAndSafeWithoutStart) {
  const Graph g = TestNetwork(100, 19);
  BidirectionalDijkstra index(g);
  {
    QueryServer server(index, wire::kAnyTechnique, g.NumVertices(), {});
    server.Shutdown();  // never started
    server.Shutdown();
  }
  {
    QueryServer server(index, wire::kAnyTechnique, g.NumVertices(), {});
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;
    server.Shutdown();
    server.Shutdown();  // idempotent
  }  // destructor runs Shutdown() again
}

TEST(QueryServer, FailedStartStopsTraceExporter) {
  // Regression: Start() spawns the trace exporter before binding the
  // port, and a bind failure used to return without stopping it — the
  // exporter thread (and its open JSONL file) leaked until destruction.
  const Graph g = TestNetwork(100, 19);
  BidirectionalDijkstra index(g);

  // Occupy a port with a healthy server.
  QueryServer holder(index, wire::kAnyTechnique, g.NumVertices(), {});
  std::string error;
  ASSERT_TRUE(holder.Start(&error)) << error;

  ServerOptions options;
  options.port = holder.Port();  // guaranteed in use
  options.trace_out = testing::TempDir() + "/failed_start_traces.jsonl";
  QueryServer server(index, wire::kAnyTechnique, g.NumVertices(), options);
  EXPECT_FALSE(server.Start(&error));
  EXPECT_FALSE(server.tracer().ExporterRunning())
      << "failed Start must stop the exporter it spawned";
  holder.Shutdown();
  std::remove(options.trace_out.c_str());
}

}  // namespace
}  // namespace roadnet
