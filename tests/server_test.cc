#include "server/server.h"

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "ch/ch_index.h"
#include "dijkstra/bidirectional.h"
#include "server/bounded_queue.h"
#include "server/client.h"
#include "server/wire.h"
#include "tests/test_util.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

// --- Wire protocol round trips ---

TEST(Wire, QueryRequestRoundTrips) {
  wire::QueryRequest req;
  req.technique = wire::TechniqueId("ch");
  req.kind = wire::QueryKind::kPath;
  req.source = 12345;
  req.target = 67890;
  req.deadline_micros = 2500;
  const std::string body = wire::EncodeQueryRequest(req);
  EXPECT_EQ(wire::PeekType(body), wire::kQuery);
  const auto decoded = wire::DecodeQueryRequest(body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->technique, req.technique);
  EXPECT_EQ(decoded->kind, req.kind);
  EXPECT_EQ(decoded->source, req.source);
  EXPECT_EQ(decoded->target, req.target);
  EXPECT_EQ(decoded->deadline_micros, req.deadline_micros);
}

TEST(Wire, QueryResponseRoundTripsWithPath) {
  wire::QueryResponse resp;
  resp.status = wire::Status::kOk;
  resp.distance = 424242;
  resp.server_latency_ns = 987654321;
  resp.path = {1, 5, 9, 2};
  const std::string body = wire::EncodeQueryResponse(resp);
  const auto decoded = wire::DecodeQueryResponse(body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, resp.status);
  EXPECT_EQ(decoded->distance, resp.distance);
  EXPECT_EQ(decoded->server_latency_ns, resp.server_latency_ns);
  EXPECT_EQ(decoded->path, resp.path);
}

TEST(Wire, StatsResponseRoundTrips) {
  wire::StatsResponse stats;
  stats.served = 10;
  stats.shed_overloaded = 2;
  stats.shed_deadline = 3;
  stats.distance_count = 9;
  stats.distance_p99_ns = 123456;
  stats.path_p50_ns = 789;
  const std::string body = wire::EncodeStatsResponse(stats);
  const auto decoded = wire::DecodeStatsResponse(body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->served, stats.served);
  EXPECT_EQ(decoded->shed_overloaded, stats.shed_overloaded);
  EXPECT_EQ(decoded->shed_deadline, stats.shed_deadline);
  EXPECT_EQ(decoded->distance_count, stats.distance_count);
  EXPECT_EQ(decoded->distance_p99_ns, stats.distance_p99_ns);
  EXPECT_EQ(decoded->path_p50_ns, stats.path_p50_ns);
}

TEST(Wire, RejectsTruncatedAndTrailingBytes) {
  wire::QueryRequest req;
  std::string body = wire::EncodeQueryRequest(req);
  for (size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_FALSE(
        wire::DecodeQueryRequest(body.substr(0, cut)).has_value())
        << "cut " << cut;
  }
  EXPECT_FALSE(wire::DecodeQueryRequest(body + "x").has_value());

  wire::QueryResponse resp;
  resp.path = {1, 2, 3};
  std::string rbody = wire::EncodeQueryResponse(resp);
  // Declared path length no longer matches the remaining bytes.
  EXPECT_FALSE(
      wire::DecodeQueryResponse(rbody.substr(0, rbody.size() - 4))
          .has_value());
  EXPECT_FALSE(wire::DecodeQueryResponse(rbody + "zzzz").has_value());
}

TEST(Wire, TechniqueIdsRoundTrip) {
  for (const char* name : {"any", "bidi", "ch", "alt", "hl"}) {
    EXPECT_EQ(wire::TechniqueName(wire::TechniqueId(name)), name);
  }
  EXPECT_EQ(wire::TechniqueId("no-such-technique"), wire::kAnyTechnique);
}

// --- Bounded queue semantics ---

TEST(BoundedQueue, ShedsWhenFullAndDrainsAfterClose) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full => immediate shed
  std::vector<int> batch;
  EXPECT_TRUE(q.PopBatch(&batch, 10));
  EXPECT_EQ(batch, (std::vector<int>{1, 2}));
  EXPECT_TRUE(q.TryPush(4));
  q.Close();
  EXPECT_FALSE(q.TryPush(5));  // closed => rejected
  EXPECT_TRUE(q.PopBatch(&batch, 10));  // admitted before Close: drained
  EXPECT_EQ(batch, (std::vector<int>{4}));
  EXPECT_FALSE(q.PopBatch(&batch, 10));  // closed + empty: consumer exits
}

TEST(BoundedQueue, PopBatchRespectsLimit) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.TryPush(i));
  std::vector<int> batch;
  EXPECT_TRUE(q.PopBatch(&batch, 3));
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_TRUE(q.PopBatch(&batch, 3));
  EXPECT_EQ(batch.size(), 2u);
}

// --- End-to-end over loopback ---

// An index whose every query takes a configurable wall time: makes
// queue-full, deadline, and drain interleavings deterministic.
class SlowIndex : public PathIndex {
 public:
  SlowIndex(const Graph& g, std::chrono::milliseconds delay)
      : inner_(g), delay_(delay) {}

  std::string Name() const override { return "SlowBiDi"; }
  std::unique_ptr<QueryContext> NewContext() const override {
    return inner_.NewContext();
  }
  Distance DistanceQuery(QueryContext* ctx, VertexId s,
                         VertexId t) const override {
    std::this_thread::sleep_for(delay_);
    return inner_.DistanceQuery(ctx, s, t);
  }
  Path PathQuery(QueryContext* ctx, VertexId s, VertexId t) const override {
    std::this_thread::sleep_for(delay_);
    return inner_.PathQuery(ctx, s, t);
  }
  size_t IndexBytes() const override { return inner_.IndexBytes(); }

 private:
  BidirectionalDijkstra inner_;
  std::chrono::milliseconds delay_;
};

std::unique_ptr<BlockingClient> MustConnect(uint16_t port) {
  std::string error;
  auto client = BlockingClient::Connect("127.0.0.1", port, &error);
  EXPECT_NE(client, nullptr) << error;
  return client;
}

TEST(QueryServer, AnswersDistanceAndPathQueriesCorrectly) {
  const Graph g = TestNetwork(400, 3);
  ChIndex ch(g);
  QueryServer server(ch, wire::TechniqueId("ch"), g.NumVertices(), {});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  auto client = MustConnect(server.Port());
  ASSERT_NE(client, nullptr);
  Dijkstra oracle(g);
  for (auto [s, t] : RandomPairs(g, 50, 23)) {
    const Distance truth = oracle.Run(s, t);
    wire::QueryRequest req;
    req.source = s;
    req.target = t;
    wire::QueryResponse resp;
    ASSERT_TRUE(client->Query(req, &resp, &error)) << error;
    if (truth == kInfDistance) {
      EXPECT_EQ(resp.status, wire::Status::kUnreachable);
    } else {
      EXPECT_EQ(resp.status, wire::Status::kOk);
      EXPECT_EQ(resp.distance, truth);
      EXPECT_TRUE(resp.path.empty());  // distance queries carry no path
    }

    req.kind = wire::QueryKind::kPath;
    ASSERT_TRUE(client->Query(req, &resp, &error)) << error;
    if (truth != kInfDistance) {
      ASSERT_EQ(resp.status, wire::Status::kOk);
      ASSERT_FALSE(resp.path.empty());
      EXPECT_EQ(resp.path.front(), s);
      EXPECT_EQ(resp.path.back(), t);
      EXPECT_TRUE(IsValidPath(g, resp.path));
      EXPECT_EQ(PathWeight(g, resp.path), truth);
    }
  }
  server.Shutdown();
}

TEST(QueryServer, RejectsBadRequests) {
  const Graph g = TestNetwork(200, 5);
  BidirectionalDijkstra index(g);
  QueryServer server(index, wire::TechniqueId("bidi"), g.NumVertices(), {});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  auto client = MustConnect(server.Port());
  ASSERT_NE(client, nullptr);

  wire::QueryRequest req;
  req.source = g.NumVertices();  // out of range
  req.target = 0;
  wire::QueryResponse resp;
  ASSERT_TRUE(client->Query(req, &resp, &error)) << error;
  EXPECT_EQ(resp.status, wire::Status::kBadRequest);

  req.source = 0;
  req.technique = wire::TechniqueId("ch");  // server hosts bidi
  ASSERT_TRUE(client->Query(req, &resp, &error)) << error;
  EXPECT_EQ(resp.status, wire::Status::kBadRequest);

  // kAnyTechnique matches whatever the server hosts.
  req.technique = wire::kAnyTechnique;
  ASSERT_TRUE(client->Query(req, &resp, &error)) << error;
  EXPECT_NE(resp.status, wire::Status::kBadRequest);

  const wire::StatsResponse stats = server.Stats();
  EXPECT_EQ(stats.bad_requests, 2u);
  server.Shutdown();
}

TEST(QueryServer, ShedsWithOverloadedWhenQueueFull) {
  const Graph g = TestNetwork(100, 7);
  SlowIndex slow(g, std::chrono::milliseconds(300));
  ServerOptions options;
  options.queue_capacity = 1;
  options.engine_threads = 1;
  options.max_dispatch_batch = 1;
  QueryServer server(slow, wire::kAnyTechnique, g.NumVertices(), options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  const uint16_t port = server.Port();

  // First query occupies the engine; the dispatcher pops it almost
  // immediately, leaving the queue empty for the second.
  std::thread first([&] {
    auto c = MustConnect(port);
    if (c == nullptr) return;
    wire::QueryRequest req;
    wire::QueryResponse resp;
    std::string err;
    EXPECT_TRUE(c->Query(req, &resp, &err)) << err;
    EXPECT_EQ(resp.status, wire::Status::kOk);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Second query sits in the queue (capacity 1) while the engine sleeps.
  std::thread second([&] {
    auto c = MustConnect(port);
    if (c == nullptr) return;
    wire::QueryRequest req;
    wire::QueryResponse resp;
    std::string err;
    EXPECT_TRUE(c->Query(req, &resp, &err)) << err;
    EXPECT_EQ(resp.status, wire::Status::kOk);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Third arrives with the queue full: explicit OVERLOADED, immediately.
  auto c3 = MustConnect(port);
  ASSERT_NE(c3, nullptr);
  wire::QueryRequest req;
  wire::QueryResponse resp;
  ASSERT_TRUE(c3->Query(req, &resp, &error)) << error;
  EXPECT_EQ(resp.status, wire::Status::kOverloaded);

  first.join();
  second.join();
  EXPECT_GE(server.Stats().shed_overloaded, 1u);
  server.Shutdown();
}

TEST(QueryServer, ShedsQueuedRequestsPastTheirDeadline) {
  const Graph g = TestNetwork(100, 9);
  SlowIndex slow(g, std::chrono::milliseconds(300));
  ServerOptions options;
  options.engine_threads = 1;
  options.max_dispatch_batch = 1;
  QueryServer server(slow, wire::kAnyTechnique, g.NumVertices(), options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  const uint16_t port = server.Port();

  // Occupy the engine for 300ms.
  std::thread occupant([&] {
    auto c = MustConnect(port);
    if (c == nullptr) return;
    wire::QueryRequest req;
    wire::QueryResponse resp;
    std::string err;
    EXPECT_TRUE(c->Query(req, &resp, &err)) << err;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // This request waits ~200ms in the queue but only budgets 10ms: the
  // dispatcher sheds it without running it.
  auto c2 = MustConnect(port);
  ASSERT_NE(c2, nullptr);
  wire::QueryRequest req;
  req.deadline_micros = 10000;
  wire::QueryResponse resp;
  ASSERT_TRUE(c2->Query(req, &resp, &error)) << error;
  EXPECT_EQ(resp.status, wire::Status::kDeadlineExceeded);

  occupant.join();
  EXPECT_GE(server.Stats().shed_deadline, 1u);
  server.Shutdown();
}

TEST(QueryServer, DrainsInFlightRequestsOnShutdown) {
  const Graph g = TestNetwork(100, 11);
  SlowIndex slow(g, std::chrono::milliseconds(200));
  ServerOptions options;
  options.engine_threads = 1;
  QueryServer server(slow, wire::kAnyTechnique, g.NumVertices(), options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  const uint16_t port = server.Port();

  // A request that will still be running when the drain starts.
  std::thread in_flight([&] {
    auto c = MustConnect(port);
    if (c == nullptr) return;
    wire::QueryRequest req;
    wire::QueryResponse resp;
    std::string err;
    // Drain must answer this, not drop it.
    EXPECT_TRUE(c->Query(req, &resp, &err)) << err;
    EXPECT_TRUE(resp.status == wire::Status::kOk ||
                resp.status == wire::Status::kUnreachable)
        << wire::StatusName(resp.status);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Admin hangs up the server mid-query.
  auto admin = MustConnect(port);
  ASSERT_NE(admin, nullptr);
  ASSERT_TRUE(admin->SendShutdown(&error)) << error;
  EXPECT_TRUE(
      server.WaitForShutdownRequest(std::chrono::milliseconds(2000)));

  // New requests on the draining server are refused explicitly (until
  // Shutdown() closes the connections).
  wire::QueryRequest req;
  wire::QueryResponse resp;
  if (admin->Query(req, &resp, &error)) {
    EXPECT_EQ(resp.status, wire::Status::kShuttingDown);
  }

  server.Shutdown();
  in_flight.join();
}

TEST(QueryServer, StatsCountServedQueries) {
  const Graph g = TestNetwork(200, 13);
  BidirectionalDijkstra index(g);
  QueryServer server(index, wire::kAnyTechnique, g.NumVertices(), {});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  auto client = MustConnect(server.Port());
  ASSERT_NE(client, nullptr);
  for (auto [s, t] : RandomPairs(g, 20, 31)) {
    wire::QueryRequest req;
    req.source = s;
    req.target = t;
    wire::QueryResponse resp;
    ASSERT_TRUE(client->Query(req, &resp, &error)) << error;
  }
  wire::StatsResponse stats;
  ASSERT_TRUE(client->GetStats(&stats, &error)) << error;
  EXPECT_EQ(stats.served, 20u);
  EXPECT_EQ(stats.distance_count, 20u);
  EXPECT_EQ(stats.path_count, 0u);
  EXPECT_EQ(stats.connections_accepted, 1u);
  server.Shutdown();
}

TEST(QueryServer, EnforcesConnectionCap) {
  const Graph g = TestNetwork(100, 17);
  BidirectionalDijkstra index(g);
  ServerOptions options;
  options.max_connections = 2;
  QueryServer server(index, wire::kAnyTechnique, g.NumVertices(), options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  auto c1 = MustConnect(server.Port());
  auto c2 = MustConnect(server.Port());
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(c2, nullptr);
  // Keep both counted: run one query each so the handlers are live.
  wire::QueryRequest req;
  wire::QueryResponse resp;
  ASSERT_TRUE(c1->Query(req, &resp, &error)) << error;
  ASSERT_TRUE(c2->Query(req, &resp, &error)) << error;

  // The third connection is accepted by the kernel but closed by the
  // server at the cap: its first round trip fails.
  auto c3 = BlockingClient::Connect("127.0.0.1", server.Port(), &error);
  bool rejected = c3 == nullptr;
  if (!rejected) {
    rejected = !c3->Query(req, &resp, &error);
  }
  EXPECT_TRUE(rejected);
  EXPECT_GE(server.Stats().connections_rejected, 1u);
  server.Shutdown();
}

TEST(QueryServer, ShutdownIsIdempotentAndSafeWithoutStart) {
  const Graph g = TestNetwork(100, 19);
  BidirectionalDijkstra index(g);
  {
    QueryServer server(index, wire::kAnyTechnique, g.NumVertices(), {});
    server.Shutdown();  // never started
    server.Shutdown();
  }
  {
    QueryServer server(index, wire::kAnyTechnique, g.NumVertices(), {});
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;
    server.Shutdown();
    server.Shutdown();  // idempotent
  }  // destructor runs Shutdown() again
}

}  // namespace
}  // namespace roadnet
