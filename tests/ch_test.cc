#include "ch/ch_index.h"

#include <memory>

#include "ch/contraction.h"
#include "ch/many_to_many.h"
#include "dijkstra/dijkstra.h"
#include "graph/generator.h"
#include "tests/test_util.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

TEST(Contraction, PaperFigure1ProducesValidShortcuts) {
  Graph g = PaperFigure1Graph();
  ChConfig config;
  ContractionResult result = ContractGraph(g, config);
  ASSERT_EQ(result.rank.size(), 8u);
  // All ranks distinct.
  std::vector<bool> seen(8, false);
  for (uint32_t r : result.rank) {
    ASSERT_LT(r, 8u);
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
  }
  // Every shortcut's weight equals the true distance between its endpoints
  // (Section 3.2: w(c) = dist(vj, vk)).
  Dijkstra dij(g);
  for (const TaggedEdge& e : result.edges) {
    if (e.middle == kInvalidVertex) continue;
    EXPECT_EQ(dij.Run(e.u, e.v), e.weight)
        << "shortcut (" << e.u << "," << e.v << ")";
  }
}

TEST(ChIndex, PaperFigure1Distances) {
  Graph g = PaperFigure1Graph();
  ChIndex ch(g);
  // The paper's walkthrough: the CH query for (v3, v7) meets at v8 and
  // returns dist = 6 (v3-v1-v8 = 2 plus v8-v6-v5-v7 = 4).
  EXPECT_EQ(ch.DistanceQuery(2, 6), 6u);
  Dijkstra dij(g);
  for (VertexId s = 0; s < 8; ++s) {
    for (VertexId t = 0; t < 8; ++t) {
      EXPECT_EQ(ch.DistanceQuery(s, t), dij.Run(s, t))
          << "s=" << s << " t=" << t;
    }
  }
}

TEST(ChIndex, CorrectOnSyntheticNetworks) {
  Graph g = TestNetwork(600, 7);
  ChIndex ch(g);
  ExpectIndexCorrect(g, &ch, 200, 11);
}

TEST(ChIndex, CorrectWithoutStallOnDemand) {
  Graph g = TestNetwork(600, 7);
  ChConfig config;
  config.stall_on_demand = false;
  ChIndex ch(g, config);
  EXPECT_FALSE(ch.StallOnDemand());
  ExpectIndexCorrect(g, &ch, 200, 13);
}

TEST(ChIndex, SelfQuery) {
  Graph g = TestNetwork(200, 3);
  ChIndex ch(g);
  EXPECT_EQ(ch.DistanceQuery(5, 5), 0u);
  Path p = ch.PathQuery(5, 5);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 5u);
}

TEST(ChIndex, AllOrderingHeuristicsAreCorrect) {
  Graph g = TestNetwork(400, 21);
  for (OrderingHeuristic h :
       {OrderingHeuristic::kEdgeDifferenceDeleted,
        OrderingHeuristic::kEdgeDifference, OrderingHeuristic::kDegree,
        OrderingHeuristic::kRandom}) {
    ChConfig config;
    config.heuristic = h;
    ChIndex ch(g, config);
    ExpectIndexCorrect(g, &ch, 100, 17);
  }
}

TEST(ChIndex, GoodOrderingBeatsRandomOnShortcuts) {
  Graph g = TestNetwork(1200, 5);
  ChConfig good;
  ChConfig bad;
  bad.heuristic = OrderingHeuristic::kRandom;
  ChIndex ch_good(g, good);
  ChIndex ch_bad(g, bad);
  // The paper notes an inferior ordering can produce drastically more
  // shortcuts; edge-difference ordering must do no worse than random.
  EXPECT_LE(ch_good.NumShortcuts(), ch_bad.NumShortcuts());
}

TEST(ManyToMany, MatchesPairwiseDijkstra) {
  Graph g = TestNetwork(300, 9);
  ChIndex ch(g);
  Rng rng(42);
  std::vector<VertexId> sources, targets;
  for (int i = 0; i < 12; ++i) {
    sources.push_back(static_cast<VertexId>(rng.NextBelow(g.NumVertices())));
    targets.push_back(static_cast<VertexId>(rng.NextBelow(g.NumVertices())));
  }
  std::vector<Distance> table = ManyToManyDistances(&ch, sources, targets);
  Dijkstra dij(g);
  for (size_t i = 0; i < sources.size(); ++i) {
    for (size_t j = 0; j < targets.size(); ++j) {
      EXPECT_EQ(table[i * targets.size() + j],
                dij.Run(sources[i], targets[j]))
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(ManyToMany, EmptyInputs) {
  Graph g = TestNetwork(100, 1);
  ChIndex ch(g);
  EXPECT_TRUE(ManyToManyDistances(&ch, {}, {1, 2}).empty());
  EXPECT_TRUE(ManyToManyDistances(&ch, {1}, {}).empty());
}

}  // namespace
}  // namespace roadnet
