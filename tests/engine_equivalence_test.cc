// Engine equivalence: a batch pushed through the concurrent QueryEngine
// must give bit-identical answers to a single-threaded Dijkstra
// reference, for every technique and for both thread counts — this is
// the end-to-end proof that the index/context split left no hidden
// mutable state inside the shared indexes.

#include <memory>
#include <utility>
#include <vector>

#include "ch/ch_index.h"
#include "dijkstra/bidirectional.h"
#include "engine/query_engine.h"
#include "pcpd/pcpd_index.h"
#include "silc/silc_index.h"
#include "tests/test_util.h"
#include "tnr/tnr_index.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

constexpr size_t kBatchSize = 200;

struct EngineFixture {
  Graph g;
  BidirectionalDijkstra bidi;
  ChIndex ch;
  TnrIndex tnr;
  SilcIndex silc;
  PcpdIndex pcpd;

  explicit EngineFixture(uint64_t seed)
      : g(TestNetwork(500, seed)),
        bidi(g),
        ch(g),
        tnr(g, &ch, SmallTnrConfig()),
        silc(g),
        pcpd(g) {}

  static TnrConfig SmallTnrConfig() {
    TnrConfig c;
    c.grid_resolution = 12;
    return c;
  }

  std::vector<PathIndex*> Indexes() {
    return {&bidi, &ch, &tnr, &silc, &pcpd};
  }
};

TEST(EngineEquivalence, BatchesMatchDijkstraAtOneAndFourThreads) {
  EngineFixture f(/*seed=*/101);
  const auto queries = RandomPairs(f.g, kBatchSize, /*seed=*/900);

  // Single-threaded ground truth.
  Dijkstra reference(f.g);
  std::vector<Distance> truth(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    truth[i] = reference.Run(queries[i].first, queries[i].second);
  }

  BatchOptions options;
  options.collect_paths = true;
  for (PathIndex* index : f.Indexes()) {
    for (size_t threads : {1u, 4u}) {
      QueryEngine engine(*index, threads);
      BatchResult result = engine.Run(queries, options);
      ASSERT_EQ(result.distances.size(), queries.size());
      ASSERT_EQ(result.paths.size(), queries.size());
      EXPECT_EQ(result.stats.num_queries, queries.size());
      EXPECT_EQ(result.stats.num_threads, threads);

      for (size_t i = 0; i < queries.size(); ++i) {
        const auto [s, t] = queries[i];
        EXPECT_EQ(result.distances[i], truth[i])
            << index->Name() << " threads=" << threads << " s=" << s
            << " t=" << t;
        const Path& p = result.paths[i];
        if (truth[i] == kInfDistance) {
          EXPECT_TRUE(p.empty()) << index->Name();
          continue;
        }
        ASSERT_FALSE(p.empty())
            << index->Name() << " threads=" << threads << " s=" << s
            << " t=" << t;
        EXPECT_EQ(p.front(), s) << index->Name();
        EXPECT_EQ(p.back(), t) << index->Name();
        // Consecutive hops must be real edges and their weights must sum
        // to the reported distance.
        EXPECT_TRUE(IsValidPath(f.g, p))
            << index->Name() << " path has a non-edge hop, s=" << s
            << " t=" << t;
        EXPECT_EQ(PathWeight(f.g, p), truth[i])
            << index->Name() << " path weight mismatch, s=" << s
            << " t=" << t;
      }
    }
  }
}

TEST(EngineEquivalence, DistanceOnlyBatchLeavesPathsEmpty) {
  EngineFixture f(/*seed=*/202);
  const auto queries = RandomPairs(f.g, 50, /*seed=*/901);
  QueryEngine engine(f.ch, 2);
  BatchResult result = engine.Run(queries);  // default: distances only
  EXPECT_EQ(result.distances.size(), queries.size());
  EXPECT_TRUE(result.paths.empty());
  EXPECT_GT(result.stats.queries_per_second, 0.0);
}

TEST(EngineEquivalence, EmptyBatchIsANoOp) {
  EngineFixture f(/*seed=*/303);
  QueryEngine engine(f.bidi, 4);
  std::vector<std::pair<VertexId, VertexId>> none;
  BatchResult result = engine.Run(none);
  EXPECT_TRUE(result.distances.empty());
  EXPECT_EQ(result.stats.num_queries, 0u);
}

TEST(EngineEquivalence, BatchStatsDeriveFromMergedHistogramAndCounters) {
  EngineFixture f(/*seed=*/505);
  const auto queries = RandomPairs(f.g, 300, /*seed=*/903);

  // Single-threaded counter ground truth: the engine's per-worker sums
  // must add up to exactly this, no matter how the batch was split.
  QueryCounters expected;
  auto ctx = f.ch.NewContext();
  for (const auto& [s, t] : queries) {
    f.ch.DistanceQuery(ctx.get(), s, t);
    expected += ctx->counters;
  }

  for (size_t threads : {1u, 4u}) {
    QueryEngine engine(f.ch, threads);
    BatchResult result = engine.Run(queries);
    const BatchStats& stats = result.stats;
    EXPECT_EQ(stats.counters, expected) << "threads=" << threads;
    // Percentiles come from the merged histogram: present, ordered, and
    // bounded by the exact max.
    EXPECT_EQ(result.latency.Count(), queries.size());
    EXPECT_GT(stats.p50_micros, 0.0);
    EXPECT_LE(stats.p50_micros, stats.p90_micros);
    EXPECT_LE(stats.p90_micros, stats.p99_micros);
    EXPECT_LE(stats.p99_micros, stats.p999_micros);
    EXPECT_LE(stats.p999_micros, stats.max_micros);
  }
}

TEST(EngineEquivalence, RecordingTogglesZeroTheStats) {
  EngineFixture f(/*seed=*/606);
  const auto queries = RandomPairs(f.g, 60, /*seed=*/904);
  QueryEngine engine(f.ch, 2);
  BatchOptions options;
  options.record_latencies = false;
  options.record_counters = false;
  BatchResult result = engine.Run(queries, options);
  // Answers are unaffected; only the observability outputs go dark.
  EXPECT_EQ(result.distances.size(), queries.size());
  EXPECT_EQ(result.latency.Count(), 0u);
  EXPECT_EQ(result.stats.p50_micros, 0.0);
  EXPECT_EQ(result.stats.p999_micros, 0.0);
  EXPECT_EQ(result.stats.max_micros, 0.0);
  EXPECT_EQ(result.stats.counters, QueryCounters{});
  EXPECT_GT(result.stats.queries_per_second, 0.0);
}

TEST(EngineEquivalence, ExplicitContextsMatchLegacyApi) {
  // The per-context overloads and the legacy context-free API must agree:
  // the latter is now a wrapper over an internal default context.
  EngineFixture f(/*seed=*/404);
  const auto queries = RandomPairs(f.g, 40, /*seed=*/902);
  for (PathIndex* index : f.Indexes()) {
    auto ctx = index->NewContext();
    for (auto [s, t] : queries) {
      EXPECT_EQ(index->DistanceQuery(ctx.get(), s, t),
                index->DistanceQuery(s, t))
          << index->Name();
    }
  }
}

}  // namespace
}  // namespace roadnet
