// Cross-cutting coverage: paper-derived performance-shape properties and
// API corner cases that the per-module suites do not pin down.

#include <algorithm>

#include "ch/ch_index.h"
#include "core/experiment.h"
#include "dijkstra/bidirectional.h"
#include "silc/silc_index.h"
#include "tests/test_util.h"
#include "tnr/tnr_index.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

TEST(ShapeProperties, ChSettlesFarFewerThanBidirectional) {
  // The essence of Figure 8: CH's rank-pruned search visits a tiny
  // fraction of what the baseline visits on far queries.
  Graph g = TestNetwork(4000, 3);
  ChIndex ch(g);
  BidirectionalDijkstra bidi(g);
  size_t ch_total = 0, bidi_total = 0;
  for (auto [s, t] : RandomPairs(g, 40, 7)) {
    ch.DistanceQuery(s, t);
    ch_total += ch.SettledCount();
    bidi.DistanceQuery(s, t);
    bidi_total += bidi.SettledCount();
  }
  EXPECT_LT(ch_total * 5, bidi_total);
}

TEST(ShapeProperties, RanksAreAPermutation) {
  Graph g = TestNetwork(600, 5);
  ChIndex ch(g);
  std::vector<bool> seen(g.NumVertices(), false);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const uint32_t r = ch.RankOf(v);
    ASSERT_LT(r, g.NumVertices());
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
  }
}

TEST(ShapeProperties, HighwayVerticesRankHigh) {
  // CH's ordering should push important (highway) vertices toward the
  // top of the hierarchy: the average rank of the top-reach vertices
  // must exceed the global average.
  Graph g = TestNetwork(1600, 9);
  ChIndex ch(g);
  // Proxy for importance: vertex degree-weighted... use the vertices on
  // the densest shortcut participation instead: vertices that appear as
  // middle of many shortcuts are important. Without exposing internals,
  // use coordinates: highway rows are multiples of the period in lattice
  // terms; instead compare max rank vs median rank of a random sample of
  // high-degree vertices.
  std::vector<VertexId> high_degree;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (g.Degree(v) >= 5) high_degree.push_back(v);
  }
  if (high_degree.size() < 10) GTEST_SKIP();
  double sum_rank = 0;
  for (VertexId v : high_degree) sum_rank += ch.RankOf(v);
  const double avg_high = sum_rank / high_degree.size();
  EXPECT_GT(avg_high, g.NumVertices() * 0.45);
}

TEST(ShapeProperties, TnrFarPathQueriesUseTheWalk) {
  Graph g = TestNetwork(2500, 11);
  ChIndex ch(g);
  TnrConfig config;
  config.grid_resolution = 24;
  TnrIndex tnr(g, &ch, config);
  // Find a pair at least 9 cells apart (the path-walk threshold).
  VertexId far_s = kInvalidVertex, far_t = kInvalidVertex;
  for (auto [s, t] : RandomPairs(g, 500, 13)) {
    if (LInfDistance(g.Coord(s), g.Coord(t)) >
        (g.Bounds().max_x - g.Bounds().min_x) / 2) {
      far_s = s;
      far_t = t;
      break;
    }
  }
  if (far_s == kInvalidVertex) GTEST_SKIP();
  tnr.ResetStats();
  Path p = tnr.PathQuery(far_s, far_t);
  ASSERT_FALSE(p.empty());
  EXPECT_TRUE(IsValidPath(g, p));
  EXPECT_EQ(tnr.stats().coarse_table_answered, 1u)
      << "far path queries should route through the greedy table walk";
}

TEST(ApiCorners, ExperimentOnEmptyQuerySet) {
  Graph g = TestNetwork(200, 3);
  ChIndex ch(g);
  QuerySet empty;
  empty.name = "empty";
  QueryResult r = Experiment::MeasureQueries(&ch, empty);
  EXPECT_EQ(r.num_queries, 0u);
  EXPECT_EQ(r.avg_distance_micros, 0);
  EXPECT_EQ(r.avg_path_micros, 0);
  EXPECT_EQ(Experiment::CountDistanceMismatches(&ch, &ch, empty), 0u);
}

TEST(ApiCorners, AdjacentVertexQueries) {
  // s and t directly connected: every technique must return the edge (or
  // a tie of equal weight).
  Graph g = TestNetwork(700, 17);
  ChIndex ch(g);
  SilcIndex silc(g);
  Dijkstra dij(g);
  size_t checked = 0;
  for (VertexId s = 0; s < g.NumVertices() && checked < 50; s += 13) {
    for (const Arc& a : g.Neighbors(s)) {
      const Distance truth = dij.Run(s, a.to);
      EXPECT_EQ(ch.DistanceQuery(s, a.to), truth);
      EXPECT_EQ(silc.DistanceQuery(s, a.to), truth);
      ++checked;
      break;
    }
  }
  EXPECT_GE(checked, 30u);
}

TEST(ApiCorners, SilcIndexGrowsWithN) {
  Graph g1 = TestNetwork(300, 3);
  Graph g2 = TestNetwork(900, 3);
  SilcIndex s1(g1), s2(g2);
  EXPECT_GT(s1.NumIntervals(), 0u);
  EXPECT_GT(s2.NumIntervals(), s1.NumIntervals());
  EXPECT_GT(s2.IndexBytes(), s1.IndexBytes());
}

TEST(ApiCorners, IndexNamesMatchThePaper) {
  Graph g = TestNetwork(200, 5);
  ChIndex ch(g);
  BidirectionalDijkstra bidi(g);
  TnrConfig config;
  config.grid_resolution = 8;
  TnrIndex tnr(g, &ch, config);
  SilcIndex silc(g);
  EXPECT_EQ(ch.Name(), "CH");
  EXPECT_EQ(bidi.Name(), "Dijkstra");
  EXPECT_EQ(tnr.Name(), "TNR");
  EXPECT_EQ(silc.Name(), "SILC");
}

}  // namespace
}  // namespace roadnet
