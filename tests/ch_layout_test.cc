// Tests for the rank-permuted, SoA-split CH search core: arc-index
// unpacking performs zero edge searches, the context-taking upward
// search space reuses caller scratch, and the layout answers exactly
// like bidirectional Dijkstra — including under 8 concurrent contexts
// sharing one immutable index (run under TSan via scripts/check.sh).

#include <atomic>
#include <thread>
#include <vector>

#include "ch/ch_index.h"
#include "dijkstra/bidirectional.h"
#include "routing/path.h"
#include "tests/test_util.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

TEST(ChLayout, PathUnpackingPerformsNoEdgeSearches) {
  Graph g = TestNetwork(600, 7);
  ChIndex ch(g);
  auto ctx = ch.NewContext();
  uint64_t unpacked = 0;
  for (auto [s, t] : RandomPairs(g, 150, 3)) {
    ch.PathQuery(ctx.get(), s, t);
    // The arc-index layout never performs a FindEdge-style binary search:
    // every shortcut was resolved to its child arc indices at build time.
    EXPECT_EQ(ctx->counters.edge_searches, 0u) << "s=" << s << " t=" << t;
    unpacked += ctx->counters.shortcuts_unpacked;
  }
  // The assertion above is only meaningful if unpacking actually ran.
  EXPECT_GT(unpacked, 0u);
}

TEST(ChLayout, UpwardSearchSpaceReusesCallerContext) {
  Graph g = TestNetwork(400, 11);
  ChIndex ch(g);
  auto ctx = ch.NewContext();
  std::vector<std::pair<VertexId, Distance>> out;
  ch.UpwardSearchSpace(ctx.get(), 17, &out);
  ASSERT_FALSE(out.empty());
  // Same context, same scratch: a second call must produce the identical
  // space (stale generation state cannot leak between calls) and agree
  // with the default-context convenience overload.
  auto first = out;
  ch.UpwardSearchSpace(ctx.get(), 17, &out);
  EXPECT_EQ(first, out);
  EXPECT_EQ(first, ch.UpwardSearchSpace(17));
  // Interleaving distance queries on the same context must not corrupt
  // subsequent search spaces.
  ch.DistanceQuery(ctx.get(), 1, 300);
  ch.UpwardSearchSpace(ctx.get(), 17, &out);
  EXPECT_EQ(first, out);
}

TEST(ChLayout, RankIsAPermutation) {
  Graph g = TestNetwork(300, 5);
  ChIndex ch(g);
  std::vector<bool> seen(g.NumVertices(), false);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const uint32_t r = ch.RankOf(v);
    ASSERT_LT(r, g.NumVertices());
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
  }
}

// 2000 random (s,t) pairs per generator size against the bidirectional
// Dijkstra ground truth: distances and unpacked path weights must be
// identical. Eight threads each drive their own context over a shared
// immutable index, so under TSan this doubles as the concurrency proof
// for the rank-space scratch arrays.
TEST(ChLayout, MatchesBidirectionalDijkstraAcross8Contexts) {
  for (uint32_t size : {400u, 1100u}) {
    Graph g = TestNetwork(size, 23 + size);
    ChIndex ch(g);
    BidirectionalDijkstra bidi(g);
    const auto pairs = RandomPairs(g, 2000, size);
    std::vector<Distance> truth(pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
      truth[i] = bidi.DistanceQuery(pairs[i].first, pairs[i].second);
    }

    constexpr int kThreads = 8;
    std::atomic<uint64_t> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int w = 0; w < kThreads; ++w) {
      threads.emplace_back([&, w] {
        auto ctx = ch.NewContext();
        for (size_t i = w; i < pairs.size(); i += kThreads) {
          const auto [s, t] = pairs[i];
          if (ch.DistanceQuery(ctx.get(), s, t) != truth[i]) {
            ++failures;
            continue;
          }
          const Path path = ch.PathQuery(ctx.get(), s, t);
          if (truth[i] == kInfDistance) {
            if (!path.empty()) ++failures;
            continue;
          }
          if (path.empty() || path.front() != s || path.back() != t ||
              !IsValidPath(g, path) || PathWeight(g, path) != truth[i]) {
            ++failures;
          }
        }
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(failures.load(), 0u) << "size=" << size;
  }
}

}  // namespace
}  // namespace roadnet
