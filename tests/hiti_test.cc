#include "hiti/partition_overlay.h"

#include "dijkstra/dijkstra.h"
#include "tests/test_util.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

class HitiCorrectnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HitiCorrectnessTest, MatchesDijkstraAcrossSeeds) {
  Graph g = TestNetwork(600, GetParam());
  PartitionOverlayConfig config;
  config.region_resolution = 5;
  PartitionOverlayIndex hiti(g, config);
  ExpectIndexCorrect(g, &hiti, 150, GetParam() + 800);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HitiCorrectnessTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(PartitionOverlay, BoundaryDetection) {
  Graph g = TestNetwork(500, 7);
  PartitionOverlayConfig config;
  config.region_resolution = 4;
  PartitionOverlayIndex hiti(g, config);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    bool has_crossing = false;
    for (const Arc& a : g.Neighbors(v)) {
      if (hiti.RegionOf(a.to) != hiti.RegionOf(v)) has_crossing = true;
    }
    EXPECT_EQ(hiti.IsBoundary(v), has_crossing) << "v=" << v;
  }
}

TEST(PartitionOverlay, SkipsForeignInteriors) {
  // On far queries the overlay search must settle fewer vertices than a
  // full unidirectional Dijkstra: foreign-region interiors are bypassed.
  Graph g = TestNetwork(2500, 9);
  PartitionOverlayIndex hiti(g);
  Dijkstra dij(g);
  size_t hiti_total = 0, dij_total = 0;
  for (auto [s, t] : RandomPairs(g, 30, 3)) {
    hiti.DistanceQuery(s, t);
    hiti_total += hiti.SettledCount();
    dij.Run(s, t);
    dij_total += dij.SettledCount();
  }
  EXPECT_LT(hiti_total * 3, dij_total * 2);  // at least ~33% fewer
}

TEST(PartitionOverlay, SameRegionQueriesAreExact) {
  Graph g = TestNetwork(800, 11);
  PartitionOverlayConfig config;
  config.region_resolution = 3;  // big regions: same-region pairs common
  PartitionOverlayIndex hiti(g, config);
  Dijkstra dij(g);
  size_t same_region = 0;
  for (auto [s, t] : RandomPairs(g, 200, 13)) {
    if (hiti.RegionOf(s) != hiti.RegionOf(t)) continue;
    ++same_region;
    EXPECT_EQ(hiti.DistanceQuery(s, t), dij.Run(s, t));
  }
  EXPECT_GT(same_region, 5u);
}

TEST(PartitionOverlay, SingleRegionDegeneratesToDijkstra) {
  Graph g = TestNetwork(300, 5);
  PartitionOverlayConfig config;
  config.region_resolution = 1;
  PartitionOverlayIndex hiti(g, config);
  EXPECT_EQ(hiti.NumRegions(), 1u);
  ExpectIndexCorrect(g, &hiti, 60, 15);
}

TEST(PartitionOverlay, UnreachablePair) {
  GraphBuilder b(4);
  b.SetCoord(0, Point{0, 0});
  b.SetCoord(1, Point{10, 0});
  b.SetCoord(2, Point{10000, 10000});
  b.SetCoord(3, Point{10010, 10000});
  b.AddEdge(0, 1, 1);
  b.AddEdge(2, 3, 1);
  Graph g = std::move(b).Build();
  PartitionOverlayIndex hiti(g);
  EXPECT_EQ(hiti.DistanceQuery(0, 3), kInfDistance);
  EXPECT_TRUE(hiti.PathQuery(0, 3).empty());
}

}  // namespace
}  // namespace roadnet
