#ifndef ROADNET_TESTS_TEST_UTIL_H_
#define ROADNET_TESTS_TEST_UTIL_H_

#include <utility>
#include <vector>

#include "dijkstra/dijkstra.h"
#include "graph/generator.h"
#include "graph/graph.h"
#include "routing/path.h"
#include "routing/path_index.h"
#include "util/rng.h"

#include "gtest/gtest.h"

namespace roadnet {

// The paper's 8-vertex example network (Figure 1): edges (v2,v8) and
// (v6,v8) have weight 2, all others weight 1. Vertex ids are zero-based,
// so paper vertex v_i is id i-1. Coordinates roughly follow the figure.
inline Graph PaperFigure1Graph() {
  GraphBuilder b(8);
  // v1..v8 = ids 0..7
  b.SetCoord(0, Point{0, 2});   // v1
  b.SetCoord(1, Point{1, 3});   // v2
  b.SetCoord(2, Point{1, 1});   // v3
  b.SetCoord(3, Point{4, 0});   // v4
  b.SetCoord(4, Point{5, 1});   // v5
  b.SetCoord(5, Point{4, 2});   // v6
  b.SetCoord(6, Point{6, 2});   // v7
  b.SetCoord(7, Point{2, 3});   // v8
  // Edge set reverse-engineered from the paper's walkthroughs: v1 and v2
  // each neighbour exactly {v3, v8}; contracting v1 yields shortcut
  // (v3, v8) of weight 2; contracting v5 yields (v7, v6) of weight 2 and
  // contracting v6 yields (v7, v8) of weight 4; the CH query example gives
  // dist(v3, v7) = 6; SILC's Figure 4 routes v8's paths to v4..v7 through
  // v6. All of that pins the nine edges to:
  b.AddEdge(0, 2, 1);  // (v1, v3)
  b.AddEdge(0, 7, 1);  // (v1, v8)
  b.AddEdge(1, 2, 1);  // (v2, v3)
  b.AddEdge(1, 7, 2);  // (v2, v8), weight 2
  b.AddEdge(3, 4, 1);  // (v4, v5)
  b.AddEdge(3, 5, 1);  // (v4, v6)
  b.AddEdge(4, 5, 1);  // (v5, v6)
  b.AddEdge(4, 6, 1);  // (v5, v7)
  b.AddEdge(5, 7, 2);  // (v6, v8), weight 2
  return std::move(b).Build();
}

// Small deterministic synthetic network for tests.
inline Graph TestNetwork(uint32_t target_vertices, uint64_t seed) {
  GeneratorConfig config;
  config.target_vertices = target_vertices;
  config.seed = seed;
  config.highway_period = 8;
  return GenerateRoadNetwork(config);
}

// Draws `count` random (s, t) pairs.
inline std::vector<std::pair<VertexId, VertexId>> RandomPairs(
    const Graph& g, size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<VertexId, VertexId>> pairs;
  pairs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    pairs.emplace_back(static_cast<VertexId>(rng.NextBelow(g.NumVertices())),
                       static_cast<VertexId>(rng.NextBelow(g.NumVertices())));
  }
  return pairs;
}

// Checks an index against Dijkstra ground truth on random queries: the
// distance must match exactly and the path must be a real path in g whose
// weight equals the distance.
inline void ExpectIndexCorrect(const Graph& g, PathIndex* index,
                               size_t num_queries, uint64_t seed) {
  Dijkstra reference(g);
  for (auto [s, t] : RandomPairs(g, num_queries, seed)) {
    const Distance truth = reference.Run(s, t);
    EXPECT_EQ(index->DistanceQuery(s, t), truth)
        << index->Name() << " distance mismatch for s=" << s << " t=" << t;
    Path path = index->PathQuery(s, t);
    if (truth == kInfDistance) {
      EXPECT_TRUE(path.empty());
      continue;
    }
    ASSERT_FALSE(path.empty())
        << index->Name() << " returned no path for s=" << s << " t=" << t;
    EXPECT_EQ(path.front(), s) << index->Name();
    EXPECT_EQ(path.back(), t) << index->Name();
    EXPECT_TRUE(IsValidPath(g, path))
        << index->Name() << " path has a non-edge hop, s=" << s
        << " t=" << t;
    EXPECT_EQ(PathWeight(g, path), truth)
        << index->Name() << " path weight mismatch, s=" << s << " t=" << t;
  }
}

}  // namespace roadnet

#endif  // ROADNET_TESTS_TEST_UTIL_H_
