// Observability primitives: histogram bucket geometry and percentile
// semantics (pinned against hand-computed values), counter arithmetic,
// and the metrics writers' escaping and edge cases.

#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/query_counters.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

// The documented precision contract: every reported quantile is within
// 1/2^kPrecisionBits of the true rank value.
constexpr double kRelError = 1.0 / Histogram::kSubBuckets;

// ---------------------------------------------------------------- Histogram

TEST(Histogram, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_EQ(h.Sum(), 0.0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);
}

TEST(Histogram, SmallValuesAreExact) {
  // Values below 2^kPrecisionBits land in unit-width buckets, so every
  // quantile of 1..10 is the exact rank statistic.
  Histogram h;
  for (uint64_t v = 1; v <= 10; ++v) h.Record(v);
  EXPECT_EQ(h.Count(), 10u);
  EXPECT_EQ(h.Min(), 1u);
  EXPECT_EQ(h.Max(), 10u);
  EXPECT_EQ(h.Sum(), 55.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 5.5);
  // rank = ceil(q * 10): p50 -> 5th smallest = 5, p90 -> 9, p99 -> 10.
  EXPECT_EQ(h.ValueAtQuantile(0.50), 5u);
  EXPECT_EQ(h.ValueAtQuantile(0.90), 9u);
  EXPECT_EQ(h.ValueAtQuantile(0.99), 10u);
}

TEST(Histogram, DocumentedPercentilesOnKnownList) {
  // 1000 latencies 1us..1000us (recorded in nanos): true p50 = 500us,
  // p90 = 900us, p99 = 990us, p999 = 999us; each reported within the
  // bucket precision, min and max exact.
  Histogram h;
  for (uint64_t us = 1; us <= 1000; ++us) h.Record(us * 1000);
  EXPECT_EQ(h.Min(), 1000u);
  EXPECT_EQ(h.Max(), 1000000u);
  EXPECT_NEAR(h.ValueAtQuantile(0.50), 500e3, 500e3 * kRelError);
  EXPECT_NEAR(h.ValueAtQuantile(0.90), 900e3, 900e3 * kRelError);
  EXPECT_NEAR(h.ValueAtQuantile(0.99), 990e3, 990e3 * kRelError);
  EXPECT_NEAR(h.ValueAtQuantile(0.999), 999e3, 999e3 * kRelError);
}

TEST(Histogram, QuantileEdgesReturnExactMinAndMax) {
  Histogram h;
  h.Record(12345);
  h.Record(67891);
  h.Record(99999999);
  EXPECT_EQ(h.ValueAtQuantile(0.0), 12345u);
  EXPECT_EQ(h.ValueAtQuantile(-1.0), 12345u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 99999999u);
  EXPECT_EQ(h.ValueAtQuantile(2.0), 99999999u);
  // Interior quantiles never escape [Min, Max] even though a bucket
  // midpoint could exceed the largest recorded value.
  EXPECT_LE(h.ValueAtQuantile(0.999), 99999999u);
  EXPECT_GE(h.ValueAtQuantile(0.001), 12345u);
}

TEST(Histogram, MergedWorkersEqualSingleHistogram) {
  // Four per-worker histograms over an interleaved value stream must merge
  // into exactly the histogram a single recorder would have produced —
  // the property QueryEngine's per-worker design rests on.
  Histogram single;
  Histogram workers[4];
  uint64_t v = 17;
  for (int i = 0; i < 4000; ++i) {
    v = v * 2862933555777941757ull + 3037000493ull;  // deterministic walk
    const uint64_t value = v % 10000000;
    single.Record(value);
    workers[i % 4].Record(value);
  }
  Histogram merged;
  for (const Histogram& w : workers) merged.Merge(w);

  EXPECT_EQ(merged.Count(), single.Count());
  EXPECT_EQ(merged.Min(), single.Min());
  EXPECT_EQ(merged.Max(), single.Max());
  EXPECT_DOUBLE_EQ(merged.Sum(), single.Sum());
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(merged.ValueAtQuantile(q), single.ValueAtQuantile(q)) << q;
  }
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.Record(500);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);
}

TEST(Histogram, BucketGeometry) {
  // Exact range: identity buckets.
  for (uint64_t v : {0ull, 1ull, 7ull, 63ull}) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
    EXPECT_EQ(Histogram::BucketLow(v), v);
    EXPECT_EQ(Histogram::BucketMid(v), v);
  }
  // Beyond it: every value lands in its bucket, and the bucket midpoint
  // is within the documented relative error of the value.
  const std::vector<uint64_t> values = {
      64,         65,   100,    127,       128,
      1000,       123456, 999999937, (uint64_t{1} << 40) + 12345,
      std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) {
    const size_t i = Histogram::BucketIndex(v);
    ASSERT_LT(i, Histogram::kNumBuckets) << v;
    EXPECT_LE(Histogram::BucketLow(i), v) << v;
    if (i + 1 < Histogram::kNumBuckets) {
      EXPECT_GT(Histogram::BucketLow(i + 1), v) << v;
    }
    const double mid = static_cast<double>(Histogram::BucketMid(i));
    EXPECT_NEAR(mid, static_cast<double>(v),
                static_cast<double>(v) * kRelError + 1)
        << v;
  }
}

// ------------------------------------------------------------ QueryCounters

TEST(QueryCounters, AccumulateAndReset) {
  QueryCounters a;
  a.Settle(3);
  a.RelaxEdge();
  a.HeapPush(2);
  a.HeapPop();
  a.ShortcutUnpacked(4);
  a.TableLookup(5);
  a.TreeLookup(6);
  QueryCounters b = a;
  b += a;
  EXPECT_EQ(b.vertices_settled, 6u);
  EXPECT_EQ(b.edges_relaxed, 2u);
  EXPECT_EQ(b.heap_pushes, 4u);
  EXPECT_EQ(b.heap_pops, 2u);
  EXPECT_EQ(b.shortcuts_unpacked, 8u);
  EXPECT_EQ(b.table_lookups, 10u);
  EXPECT_EQ(b.tree_lookups, 12u);
  b.Reset();
  EXPECT_EQ(b, QueryCounters{});
}

// ---------------------------------------------------------------- CsvEscape

TEST(CsvEscape, PlainFieldPassesThrough) {
  EXPECT_EQ(CsvEscape("plain_field-1.5"), "plain_field-1.5");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(CsvEscape, CommaAndNewlineWrapInQuotes) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("line1\nline2"), "\"line1\nline2\"");
  EXPECT_EQ(CsvEscape("cr\rhere"), "\"cr\rhere\"");
}

TEST(CsvEscape, EmbeddedQuotesAreDoubled) {
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("\""), "\"\"\"\"");
}

// ---------------------------------------------------------- MetricsRegistry

TEST(MetricsRegistry, JsonlEscapesAndFormats) {
  MetricsRegistry m;
  m.Add("plain", 70);
  m.Add("quote\"name", 0.5, {{"k\"ey", "va\nlue"}});
  std::ostringstream out;
  m.WriteJsonl(out);
  EXPECT_EQ(out.str(),
            "{\"name\":\"plain\",\"value\":70}\n"
            "{\"name\":\"quote\\\"name\",\"value\":0.5,"
            "\"labels\":{\"k\\\"ey\":\"va\\nlue\"}}\n");
}

TEST(MetricsRegistry, JsonlWritesNonFiniteAsNull) {
  MetricsRegistry m;
  m.Add("nan", std::nan(""));
  m.Add("inf", std::numeric_limits<double>::infinity());
  m.Add("ninf", -std::numeric_limits<double>::infinity());
  std::ostringstream out;
  m.WriteJsonl(out);
  EXPECT_EQ(out.str(),
            "{\"name\":\"nan\",\"value\":null}\n"
            "{\"name\":\"inf\",\"value\":null}\n"
            "{\"name\":\"ninf\",\"value\":null}\n");
}

TEST(MetricsRegistry, EmptySnapshots) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  std::ostringstream jsonl, csv;
  m.WriteJsonl(jsonl);
  m.WriteCsv(csv);
  EXPECT_EQ(jsonl.str(), "");
  EXPECT_EQ(csv.str(), "name,value,labels\n");  // header only
}

TEST(MetricsRegistry, CsvEscapesLabelsAndNonFinite) {
  MetricsRegistry m;
  m.Add("a,b", std::nan(""), {{"k", "v,w"}});
  m.Add("up", std::numeric_limits<double>::infinity());
  m.Add("down", -std::numeric_limits<double>::infinity(), {{"x", "1"}, {"y", "2"}});
  std::ostringstream out;
  m.WriteCsv(out);
  EXPECT_EQ(out.str(),
            "name,value,labels\n"
            "\"a,b\",nan,\"k=v,w\"\n"
            "up,inf,\n"
            "down,-inf,x=1;y=2\n");
}

TEST(MetricsRegistry, AddCountersEmitsEveryField) {
  QueryCounters c;
  c.Settle(11);
  c.TreeLookup(7);
  MetricsRegistry m;
  m.AddCounters(c, {{"method", "CH"}});
  ASSERT_EQ(m.points().size(), 8u);
  EXPECT_EQ(m.points()[0].name, "vertices_settled");
  EXPECT_EQ(m.points()[0].value, 11.0);
  EXPECT_EQ(m.points()[7].name, "tree_lookups");
  EXPECT_EQ(m.points()[7].value, 7.0);
  for (const MetricPoint& p : m.points()) {
    ASSERT_EQ(p.labels.size(), 1u);
    EXPECT_EQ(p.labels[0].second, "CH");
  }
}

TEST(MetricsRegistry, AddHistogramEmitsSummaryPoints) {
  Histogram h;
  for (uint64_t v = 1; v <= 10; ++v) h.Record(v * 1000);
  MetricsRegistry m;
  m.AddHistogram("latency_us", h, 1e-3);
  ASSERT_EQ(m.points().size(), 8u);
  EXPECT_EQ(m.points()[0].name, "latency_us_count");
  EXPECT_EQ(m.points()[0].value, 10.0);
  EXPECT_EQ(m.points()[1].name, "latency_us_min");
  EXPECT_DOUBLE_EQ(m.points()[1].value, 1.0);  // 1000ns scaled to 1us
  EXPECT_EQ(m.points()[7].name, "latency_us_max");
  EXPECT_DOUBLE_EQ(m.points()[7].value, 10.0);
}

TEST(MetricsRegistry, WriteFileDispatchesOnExtension) {
  MetricsRegistry m;
  m.Add("x", 1);
  const std::string dir = ::testing::TempDir();
  const std::string csv_path = dir + "/obs_test_metrics.csv";
  const std::string jsonl_path = dir + "/obs_test_metrics.jsonl";
  ASSERT_TRUE(m.WriteFile(csv_path));
  ASSERT_TRUE(m.WriteFile(jsonl_path));

  std::ifstream csv(csv_path);
  std::string first;
  std::getline(csv, first);
  EXPECT_EQ(first, "name,value,labels");

  std::ifstream jsonl(jsonl_path);
  std::getline(jsonl, first);
  EXPECT_EQ(first, "{\"name\":\"x\",\"value\":1}");

  EXPECT_FALSE(m.WriteFile(dir + "/no/such/dir/metrics.jsonl"));
}

}  // namespace
}  // namespace roadnet
