#include "pcpd/pcpd_index.h"

#include <cmath>

#include "dijkstra/dijkstra.h"
#include "pcpd/redundancy.h"
#include "tests/test_util.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

TEST(PcpdIndex, PaperFigure1AllPairs) {
  Graph g = PaperFigure1Graph();
  PcpdIndex pcpd(g);
  Dijkstra dij(g);
  for (VertexId s = 0; s < 8; ++s) {
    for (VertexId t = 0; t < 8; ++t) {
      EXPECT_EQ(pcpd.DistanceQuery(s, t), dij.Run(s, t))
          << "s=" << s << " t=" << t;
      Path p = pcpd.PathQuery(s, t);
      ASSERT_FALSE(p.empty());
      EXPECT_TRUE(IsValidPath(g, p));
      EXPECT_EQ(PathWeight(g, p), dij.Run(s, t));
    }
  }
}

class PcpdCorrectnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PcpdCorrectnessTest, MatchesDijkstraAcrossSeeds) {
  Graph g = TestNetwork(350, GetParam());
  PcpdIndex pcpd(g);
  ExpectIndexCorrect(g, &pcpd, 120, GetParam() + 900);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcpdCorrectnessTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(PcpdIndex, HandlesDuplicateCoordinates) {
  GraphBuilder b(6);
  b.SetCoord(0, Point{0, 0});
  b.SetCoord(1, Point{100, 100});
  b.SetCoord(2, Point{100, 100});  // duplicate
  b.SetCoord(3, Point{100, 100});  // triplicate
  b.SetCoord(4, Point{300, 100});
  b.SetCoord(5, Point{400, 0});
  b.AddEdge(0, 1, 5);
  b.AddEdge(0, 2, 9);
  b.AddEdge(1, 3, 3);
  b.AddEdge(2, 4, 2);
  b.AddEdge(3, 4, 4);
  b.AddEdge(4, 5, 1);
  Graph g = std::move(b).Build();
  PcpdIndex pcpd(g);
  ExpectIndexCorrect(g, &pcpd, 60, 2);
}

TEST(PcpdIndex, CoversEveryVertexPair) {
  Graph g = TestNetwork(150, 17);
  PcpdIndex pcpd(g);
  Dijkstra dij(g);
  // Exhaustive all-pairs check on a small network: the decomposition must
  // cover every pair with a usable chain.
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    dij.RunAll(s);
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      EXPECT_EQ(pcpd.DistanceQuery(s, t), dij.DistanceTo(t))
          << "s=" << s << " t=" << t;
    }
  }
}

TEST(PcpdIndex, StoresMorePairsThanVertices) {
  // Appendix C: real (and realistic synthetic) networks are nearly
  // non-redundant, so |Spcp| greatly exceeds the idealized O(n).
  Graph g = TestNetwork(400, 23);
  PcpdIndex pcpd(g);
  EXPECT_GT(pcpd.NumPairs(), g.NumVertices());
}

TEST(RedundancyMeter, RatioIsAtLeastOne) {
  Graph g = TestNetwork(400, 3);
  RedundancyMeter meter(g);
  for (auto [s, t] : RandomPairs(g, 100, 5)) {
    if (s == t) continue;
    const double r = meter.Ratio(s, t);
    EXPECT_GE(r, 1.0) << "s=" << s << " t=" << t;
  }
}

TEST(RedundancyMeter, DetectsForcedBottleneck) {
  // A graph where s-t has exactly one interior route: no core-disjoint
  // path exists and the ratio is infinite.
  GraphBuilder b(4);
  b.SetCoord(0, Point{0, 0});
  b.SetCoord(1, Point{100, 0});
  b.SetCoord(2, Point{200, 0});
  b.SetCoord(3, Point{300, 0});
  b.AddEdge(0, 1, 1);
  b.AddEdge(1, 2, 1);
  b.AddEdge(2, 3, 1);
  Graph g = std::move(b).Build();
  RedundancyMeter meter(g);
  EXPECT_TRUE(std::isinf(meter.Ratio(0, 3)));
}

TEST(RedundancyMeter, FindsParallelRoute) {
  // Two disjoint routes 0 -> 3: direct (length 10) and detour (length 12):
  // ratio 1.2.
  GraphBuilder b(4);
  b.SetCoord(0, Point{0, 0});
  b.SetCoord(1, Point{100, 0});
  b.SetCoord(2, Point{100, 100});
  b.SetCoord(3, Point{200, 0});
  b.AddEdge(0, 1, 5);
  b.AddEdge(1, 3, 5);
  b.AddEdge(0, 2, 6);
  b.AddEdge(2, 3, 6);
  Graph g = std::move(b).Build();
  RedundancyMeter meter(g);
  EXPECT_DOUBLE_EQ(meter.Ratio(0, 3), 1.2);
}

}  // namespace
}  // namespace roadnet
