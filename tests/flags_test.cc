#include "util/flags.h"

#include <array>

#include "gtest/gtest.h"

namespace roadnet {
namespace {

// argv helper: builds a mutable char* array from string literals.
template <size_t N>
std::optional<FlagMap> Parse(std::array<const char*, N> args,
                             const FlagSpec& spec, std::string* error) {
  return ParseFlags(static_cast<int>(N),
                    const_cast<char* const*>(args.data()), 0, spec, error);
}

const FlagSpec kSpec{{"graph", "out", "metrics-out", "seed"}, {"path", "v"}};

TEST(Flags, ParsesValuedAndBooleanInAnyOrder) {
  std::string error;
  auto flags = Parse(std::array{"--graph", "g.bin", "--path", "--seed", "7"},
                     kSpec, &error);
  ASSERT_TRUE(flags.has_value()) << error;
  EXPECT_EQ((*flags)["graph"], "g.bin");
  EXPECT_EQ((*flags)["path"], "1");
  EXPECT_EQ((*flags)["seed"], "7");
  EXPECT_EQ(flags->count("out"), 0u);

  flags = Parse(std::array{"--path", "--graph", "g.bin"}, kSpec, &error);
  ASSERT_TRUE(flags.has_value()) << error;
  EXPECT_EQ((*flags)["graph"], "g.bin");
}

TEST(Flags, RejectsUnknownFlag) {
  std::string error;
  // The motivating typo: --metrics-ouT used to be silently ignored.
  auto flags = Parse(std::array{"--graph", "g.bin", "--metrics-ouT", "m.csv"},
                     kSpec, &error);
  EXPECT_FALSE(flags.has_value());
  EXPECT_NE(error.find("--metrics-ouT"), std::string::npos) << error;
}

TEST(Flags, RejectsMissingValue) {
  std::string error;
  auto flags = Parse(std::array{"--path", "--graph"}, kSpec, &error);
  EXPECT_FALSE(flags.has_value());
  EXPECT_NE(error.find("--graph"), std::string::npos) << error;
  EXPECT_NE(error.find("value"), std::string::npos) << error;
}

TEST(Flags, RejectsStrayPositional) {
  std::string error;
  auto flags = Parse(std::array{"--graph", "g.bin", "oops"}, kSpec, &error);
  EXPECT_FALSE(flags.has_value());
  EXPECT_NE(error.find("oops"), std::string::npos) << error;
}

TEST(Flags, RejectsDuplicateFlag) {
  std::string error;
  auto flags =
      Parse(std::array{"--graph", "a", "--graph", "b"}, kSpec, &error);
  EXPECT_FALSE(flags.has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(Flags, ValuedFlagMayConsumeDashValue) {
  // A valued flag always consumes the next token, even if it looks like
  // a flag — the spec, not a lookahead heuristic, decides arity.
  std::string error;
  auto flags = Parse(std::array{"--out", "--weird-name"}, kSpec, &error);
  ASSERT_TRUE(flags.has_value()) << error;
  EXPECT_EQ((*flags)["out"], "--weird-name");
}

TEST(Flags, EmptyLineParsesToEmptyMap) {
  std::string error;
  auto flags = ParseFlags(0, nullptr, 0, kSpec, &error);
  ASSERT_TRUE(flags.has_value());
  EXPECT_TRUE(flags->empty());
}

}  // namespace
}  // namespace roadnet
