#include "pq/indexed_heap.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "util/rng.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

TEST(IndexedHeap, BasicOrdering) {
  IndexedHeap<uint64_t> heap(10);
  heap.Push(3, 30);
  heap.Push(1, 10);
  heap.Push(2, 20);
  EXPECT_EQ(heap.Size(), 3u);
  EXPECT_EQ(heap.MinItem(), 1u);
  EXPECT_EQ(heap.MinKey(), 10u);
  EXPECT_EQ(heap.PopMin(), 1u);
  EXPECT_EQ(heap.PopMin(), 2u);
  EXPECT_EQ(heap.PopMin(), 3u);
  EXPECT_TRUE(heap.Empty());
}

TEST(IndexedHeap, DecreaseKeyReorders) {
  IndexedHeap<uint64_t> heap(10);
  heap.Push(0, 100);
  heap.Push(1, 50);
  heap.DecreaseKey(0, 10);
  EXPECT_EQ(heap.MinItem(), 0u);
  EXPECT_EQ(heap.KeyOf(0), 10u);
}

TEST(IndexedHeap, PushOrDecreaseSemantics) {
  IndexedHeap<uint64_t> heap(10);
  EXPECT_TRUE(heap.PushOrDecrease(5, 50));
  EXPECT_FALSE(heap.PushOrDecrease(5, 60));  // larger: rejected
  EXPECT_FALSE(heap.PushOrDecrease(5, 50));  // equal: rejected
  EXPECT_TRUE(heap.PushOrDecrease(5, 40));
  EXPECT_EQ(heap.KeyOf(5), 40u);
}

TEST(IndexedHeap, ContainsTracksLifecycle) {
  IndexedHeap<uint64_t> heap(4);
  EXPECT_FALSE(heap.Contains(2));
  heap.Push(2, 7);
  EXPECT_TRUE(heap.Contains(2));
  heap.PopMin();
  EXPECT_FALSE(heap.Contains(2));
  // Re-insertion after pop is allowed.
  heap.Push(2, 9);
  EXPECT_TRUE(heap.Contains(2));
}

TEST(IndexedHeap, ClearIsConstantTimeReusable) {
  IndexedHeap<uint64_t> heap(8);
  for (uint32_t round = 0; round < 5; ++round) {
    for (uint32_t i = 0; i < 8; ++i) heap.Push(i, i + round);
    EXPECT_EQ(heap.MinItem(), 0u);
    heap.Clear();
    EXPECT_TRUE(heap.Empty());
    EXPECT_FALSE(heap.Contains(0));
  }
}

TEST(IndexedHeap, RandomizedAgainstStdPriorityQueue) {
  constexpr uint32_t kItems = 300;
  IndexedHeap<uint64_t> heap(kItems);
  std::vector<uint64_t> best(kItems, ~uint64_t{0});
  Rng rng(99);

  // Random pushes and decreases, then drain and compare with a reference
  // selection sort over the final keys.
  for (int op = 0; op < 5000; ++op) {
    const uint32_t item = static_cast<uint32_t>(rng.NextBelow(kItems));
    const uint64_t key = rng.NextBelow(1000000);
    if (!heap.Contains(item)) {
      if (best[item] != ~uint64_t{0}) continue;  // already popped? not yet
      heap.Push(item, key);
      best[item] = key;
    } else if (key < heap.KeyOf(item)) {
      heap.DecreaseKey(item, key);
      best[item] = key;
    }
  }
  uint64_t last = 0;
  size_t popped = 0;
  while (!heap.Empty()) {
    const uint64_t k = heap.MinKey();
    const uint32_t item = heap.PopMin();
    EXPECT_GE(k, last);
    EXPECT_EQ(k, best[item]);
    last = k;
    ++popped;
  }
  size_t expected = 0;
  for (uint64_t b : best) {
    if (b != ~uint64_t{0}) ++expected;
  }
  EXPECT_EQ(popped, expected);
}

}  // namespace
}  // namespace roadnet
