#include "util/bytes.h"
#include "util/rng.h"
#include "util/timer.h"

#include <set>
#include <thread>

#include "gtest/gtest.h"

namespace roadnet {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
    EXPECT_LT(rng.NextBelow(1), 1u);
  }
}

TEST(Rng, NextInRangeInclusiveBounds) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all seven values hit
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  double min = 1, max = 0;
  for (int i = 0; i < 5000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    min = std::min(min, d);
    max = std::max(max, d);
  }
  EXPECT_LT(min, 0.05);
  EXPECT_GT(max, 0.95);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = timer.ElapsedSeconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  EXPECT_NEAR(timer.ElapsedMicros(), timer.ElapsedSeconds() * 1e6,
              timer.ElapsedMicros() * 0.5);
}

TEST(Timer, ResetRestarts) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), 0.010);
}

TEST(Bytes, VectorBytesUsesCapacity) {
  std::vector<uint32_t> v;
  v.reserve(100);
  v.push_back(1);
  EXPECT_EQ(VectorBytes(v), 100 * sizeof(uint32_t));
}

TEST(Bytes, NestedVectorBytesCountsInnerBuffers) {
  std::vector<std::vector<uint8_t>> v(3);
  v[0].assign(10, 0);
  v[2].assign(20, 0);
  const size_t bytes = NestedVectorBytes(v);
  EXPECT_GE(bytes, 3 * sizeof(std::vector<uint8_t>) + 30);
}

TEST(Bytes, MiBConversion) {
  EXPECT_DOUBLE_EQ(BytesToMiB(1024 * 1024), 1.0);
  EXPECT_DOUBLE_EQ(BytesToMiB(0), 0.0);
}

}  // namespace
}  // namespace roadnet
