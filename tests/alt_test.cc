#include "alt/alt_index.h"

#include "dijkstra/dijkstra.h"
#include "tests/test_util.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

class AltCorrectnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AltCorrectnessTest, MatchesDijkstraAcrossSeeds) {
  Graph g = TestNetwork(700, GetParam());
  AltIndex alt(g);
  ExpectIndexCorrect(g, &alt, 150, GetParam() + 300);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AltCorrectnessTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(AltIndex, LowerBoundIsAdmissible) {
  // Property: pi_t(v) <= dist(v, t) for every v, sampled t.
  Graph g = TestNetwork(500, 9);
  AltIndex alt(g);
  Dijkstra dij(g);
  for (VertexId t : {VertexId{0}, VertexId{77}, VertexId{200}}) {
    dij.RunAll(t);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      EXPECT_LE(alt.LowerBound(v, t), dij.DistanceTo(v))
          << "v=" << v << " t=" << t;
    }
  }
}

TEST(AltIndex, LowerBoundIsConsistent) {
  // Property: pi(v) <= w(v, u) + pi(u) for every edge (v, u) — the
  // condition that makes A* settle each vertex once.
  Graph g = TestNetwork(500, 13);
  AltIndex alt(g);
  const VertexId t = 123;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const Arc& a : g.Neighbors(v)) {
      EXPECT_LE(alt.LowerBound(v, t), a.weight + alt.LowerBound(a.to, t))
          << "edge (" << v << "," << a.to << ")";
    }
  }
}

TEST(AltIndex, LowerBoundExactAtLandmarks) {
  Graph g = TestNetwork(300, 5);
  AltIndex alt(g);
  Dijkstra dij(g);
  // From a landmark L, the bound to any t is exactly dist(L, t).
  const VertexId landmark = alt.Landmarks()[0];
  dij.RunAll(landmark);
  for (VertexId t = 0; t < g.NumVertices(); ++t) {
    EXPECT_EQ(alt.LowerBound(landmark, t), dij.DistanceTo(t));
  }
}

TEST(AltIndex, GoalDirectionBeatsDijkstra) {
  // A* with landmark bounds must settle fewer vertices than an
  // unassisted unidirectional Dijkstra on point-to-point queries.
  Graph g = TestNetwork(2500, 17);
  AltIndex alt(g);
  Dijkstra dij(g);
  size_t alt_total = 0, dij_total = 0;
  for (auto [s, t] : RandomPairs(g, 40, 21)) {
    alt.DistanceQuery(s, t);
    alt_total += alt.SettledCount();
    dij.Run(s, t);
    dij_total += dij.SettledCount();
  }
  EXPECT_LT(alt_total * 2, dij_total);
}

TEST(AltIndex, MoreLandmarksNeverWorseBounds) {
  Graph g = TestNetwork(400, 3);
  AltConfig few;
  few.num_landmarks = 2;
  AltConfig many;
  many.num_landmarks = 12;
  AltIndex alt_few(g, few);
  AltIndex alt_many(g, many);
  // With the same seed the first two landmarks coincide, so the larger
  // set's max-bound dominates pointwise.
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const VertexId v = static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
    const VertexId t = static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
    EXPECT_GE(alt_many.LowerBound(v, t), alt_few.LowerBound(v, t));
  }
}

TEST(AltIndex, HandlesSingleLandmark) {
  Graph g = TestNetwork(200, 7);
  AltConfig config;
  config.num_landmarks = 1;
  AltIndex alt(g, config);
  ExpectIndexCorrect(g, &alt, 80, 31);
}

TEST(AltIndex, UnreachablePair) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1);
  b.AddEdge(2, 3, 1);
  Graph g = std::move(b).Build();
  AltIndex alt(g);
  EXPECT_EQ(alt.DistanceQuery(0, 3), kInfDistance);
  EXPECT_TRUE(alt.PathQuery(0, 3).empty());
}

}  // namespace
}  // namespace roadnet
