#include "core/report.h"

#include <sstream>

#include "gtest/gtest.h"

namespace roadnet {
namespace {

TEST(CsvEscape, PlainFieldsPassThrough) {
  EXPECT_EQ(CsvEscape("CH"), "CH");
  EXPECT_EQ(CsvEscape("DE'"), "DE'");
}

TEST(CsvEscape, QuotesSpecialCharacters) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Report, BuildCsvFormat) {
  std::vector<BuildRow> rows = {
      {"DE'", 529, "CH", 0.5, 1024},
      {"NH'", 1156, "TNR", 2.25, 4096},
  };
  std::stringstream out;
  WriteBuildCsv(rows, out);
  EXPECT_EQ(out.str(),
            "dataset,n,method,preprocess_seconds,index_bytes\n"
            "DE',529,CH,0.5,1024\n"
            "NH',1156,TNR,2.25,4096\n");
}

TEST(Report, QueryCsvFormat) {
  std::vector<QueryRow> rows = {
      {"CO'", 4489, "SILC", "Q7", 400, 1.5, 2.25},
  };
  std::stringstream out;
  WriteQueryCsv(rows, out);
  EXPECT_EQ(out.str(),
            "dataset,n,method,query_set,queries,distance_us,path_us\n"
            "CO',4489,SILC,Q7,400,1.5,2.25\n");
}

TEST(Report, EmptyTablesStillEmitHeaders) {
  std::stringstream b, q;
  WriteBuildCsv({}, b);
  WriteQueryCsv({}, q);
  EXPECT_EQ(b.str(), "dataset,n,method,preprocess_seconds,index_bytes\n");
  EXPECT_EQ(q.str(),
            "dataset,n,method,query_set,queries,distance_us,path_us\n");
}

}  // namespace
}  // namespace roadnet
