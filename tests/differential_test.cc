// Cross-technique differential harness: every technique in the tree
// must agree with the Dijkstra oracle — and therefore with every other
// technique — on every query, exactly. A future technique gets oracle
// coverage for free by joining the `techniques` list in RunDifferential.
//
// On failure the output names the graph/query seeds and the minimal
// offending (s, t) pair, so a regression reproduces with one line.

#include <algorithm>
#include <string>
#include <vector>

#include "alt/alt_index.h"
#include "ch/ch_index.h"
#include "dijkstra/bidirectional.h"
#include "dijkstra/dijkstra.h"
#include "hl/hl_index.h"
#include "tests/test_util.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

struct Mismatch {
  VertexId s;
  VertexId t;
  std::string what;
};

void RunDifferential(uint32_t target_vertices, uint64_t graph_seed,
                     size_t num_queries) {
  const uint64_t query_seed = graph_seed + 1;
  Graph g = TestNetwork(target_vertices, graph_seed);

  Dijkstra oracle(g);
  BidirectionalDijkstra bidi(g);
  ChIndex ch(g);
  HlIndex hl(g, ch);
  AltIndex alt(g);
  std::vector<PathIndex*> techniques = {&bidi, &ch, &hl, &alt};

  const auto pairs = RandomPairs(g, num_queries, query_seed);
  std::vector<Mismatch> mismatches;
  for (size_t qi = 0; qi < pairs.size(); ++qi) {
    const auto [s, t] = pairs[qi];
    const Distance truth = oracle.Run(s, t);
    for (PathIndex* index : techniques) {
      const Distance got = index->DistanceQuery(s, t);
      if (got != truth) {
        mismatches.push_back(
            {s, t,
             index->Name() + " distance " + std::to_string(got) +
                 " != oracle " + std::to_string(truth)});
        continue;
      }
      // Path queries cost an order of magnitude more than distance
      // queries; sample them, but check the sampled ones fully: a real
      // path in g whose weight equals the distance the index reported.
      if (qi % 16 != 0) continue;
      const Path path = index->PathQuery(s, t);
      if (truth == kInfDistance) {
        if (!path.empty()) {
          mismatches.push_back(
              {s, t, index->Name() + " returned a path for unreachable t"});
        }
        continue;
      }
      if (path.empty() || path.front() != s || path.back() != t) {
        mismatches.push_back(
            {s, t, index->Name() + " path endpoints wrong or empty"});
      } else if (!IsValidPath(g, path)) {
        mismatches.push_back(
            {s, t, index->Name() + " path contains a non-edge hop"});
      } else if (PathWeight(g, path) != truth) {
        mismatches.push_back(
            {s, t,
             index->Name() + " path weight " +
                 std::to_string(PathWeight(g, path)) + " != distance " +
                 std::to_string(truth)});
      }
    }
  }

  if (!mismatches.empty()) {
    std::sort(mismatches.begin(), mismatches.end(),
              [](const Mismatch& a, const Mismatch& b) {
                return std::pair(a.s, a.t) < std::pair(b.s, b.t);
              });
    const Mismatch& m = mismatches.front();
    FAIL() << mismatches.size() << " disagreement(s) over " << num_queries
           << " queries on the " << g.NumVertices()
           << "-vertex network; graph seed " << graph_seed << ", query seed "
           << query_seed << "; minimal offending pair s=" << m.s
           << " t=" << m.t << " (" << m.what << ")";
  }
}

TEST(Differential, AllTechniquesAgreeOnTenThousandQueries) {
  RunDifferential(700, 20260809, 10000);
}

// A second, structurally different network (other seed and size), so a
// bug tied to one generator layout cannot hide behind the main sweep.
TEST(Differential, AllTechniquesAgreeOnSecondNetwork) {
  RunDifferential(300, 977, 2000);
}

}  // namespace
}  // namespace roadnet
