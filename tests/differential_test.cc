// Cross-technique differential harness: every technique in the tree
// must agree with the Dijkstra oracle — and therefore with every other
// technique — on every query, exactly. A future technique gets oracle
// coverage for free by joining the `techniques` list in RunDifferential.
//
// On failure the output names the graph/query seeds and the minimal
// offending (s, t) pair, so a regression reproduces with one line.

#include <algorithm>
#include <string>
#include <vector>

#include "alt/alt_index.h"
#include "ch/ch_index.h"
#include "dijkstra/bidirectional.h"
#include "dijkstra/dijkstra.h"
#include "hl/hl_index.h"
#include "knn/ier.h"
#include "knn/knn_index.h"
#include "poi/poi_set.h"
#include "routing/knn.h"
#include "tests/test_util.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

struct Mismatch {
  VertexId s;
  VertexId t;
  std::string what;
};

void RunDifferential(uint32_t target_vertices, uint64_t graph_seed,
                     size_t num_queries) {
  const uint64_t query_seed = graph_seed + 1;
  Graph g = TestNetwork(target_vertices, graph_seed);

  Dijkstra oracle(g);
  BidirectionalDijkstra bidi(g);
  ChIndex ch(g);
  HlIndex hl(g, ch);
  AltIndex alt(g);
  std::vector<PathIndex*> techniques = {&bidi, &ch, &hl, &alt};

  const auto pairs = RandomPairs(g, num_queries, query_seed);
  std::vector<Mismatch> mismatches;
  for (size_t qi = 0; qi < pairs.size(); ++qi) {
    const auto [s, t] = pairs[qi];
    const Distance truth = oracle.Run(s, t);
    for (PathIndex* index : techniques) {
      const Distance got = index->DistanceQuery(s, t);
      if (got != truth) {
        mismatches.push_back(
            {s, t,
             index->Name() + " distance " + std::to_string(got) +
                 " != oracle " + std::to_string(truth)});
        continue;
      }
      // Path queries cost an order of magnitude more than distance
      // queries; sample them, but check the sampled ones fully: a real
      // path in g whose weight equals the distance the index reported.
      if (qi % 16 != 0) continue;
      const Path path = index->PathQuery(s, t);
      if (truth == kInfDistance) {
        if (!path.empty()) {
          mismatches.push_back(
              {s, t, index->Name() + " returned a path for unreachable t"});
        }
        continue;
      }
      if (path.empty() || path.front() != s || path.back() != t) {
        mismatches.push_back(
            {s, t, index->Name() + " path endpoints wrong or empty"});
      } else if (!IsValidPath(g, path)) {
        mismatches.push_back(
            {s, t, index->Name() + " path contains a non-edge hop"});
      } else if (PathWeight(g, path) != truth) {
        mismatches.push_back(
            {s, t,
             index->Name() + " path weight " +
                 std::to_string(PathWeight(g, path)) + " != distance " +
                 std::to_string(truth)});
      }
    }
  }

  if (!mismatches.empty()) {
    std::sort(mismatches.begin(), mismatches.end(),
              [](const Mismatch& a, const Mismatch& b) {
                return std::pair(a.s, a.t) < std::pair(b.s, b.t);
              });
    const Mismatch& m = mismatches.front();
    FAIL() << mismatches.size() << " disagreement(s) over " << num_queries
           << " queries on the " << g.NumVertices()
           << "-vertex network; graph seed " << graph_seed << ", query seed "
           << query_seed << "; minimal offending pair s=" << m.s
           << " t=" << m.t << " (" << m.what << ")";
  }
}

// kNN differential: bucket-CH, IER, and the index-free Dijkstra
// expansion must return identical result lists — same POIs, same
// distances, same (distance, vertex id) order — and one-to-many must
// equal kNN with k = |category|. Densities span three powers of ten
// (plus an empty category), so the sweep crosses k < |category|,
// k > |category|, and |category| == 0.
void RunKnnDifferential(uint32_t target_vertices, uint64_t graph_seed,
                        size_t num_queries) {
  const uint64_t query_seed = graph_seed + 1;
  Graph g = TestNetwork(target_vertices, graph_seed);
  ChIndex ch(g);

  PoiConfig config;
  config.categories = {{"dense", 0.05}, {"mid", 0.005},
                       {"sparse", 0.001}, {"none", 0.0}};
  config.seed = graph_seed + 2;
  const PoiSet pois = PoiSet::Generate(g, config);
  ASSERT_EQ(pois.Vertices(3).size(), 0u) << "density 0 must be empty";

  KnnBucketIndex bucket(ch, pois);
  IerKnnIndex ier(g, ch, pois);
  KnnBucketIndex::Context bucket_ctx = bucket.NewContext();
  IerKnnIndex::Context ier_ctx = ier.NewContext();

  std::vector<std::vector<VertexId>> cat_vecs;
  for (uint32_t c = 0; c < pois.NumCategories(); ++c) {
    const auto span = pois.Vertices(c);
    cat_vecs.emplace_back(span.begin(), span.end());
  }

  const size_t ks[] = {0, 1, 2, 5, 23, 1000};
  Rng rng(query_seed);
  std::vector<KnnResult> from_bucket, from_ier, one_to_many;
  for (size_t qi = 0; qi < num_queries; ++qi) {
    const auto s = static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
    const auto c = static_cast<uint32_t>(rng.NextBelow(pois.NumCategories()));
    const size_t k = ks[qi % (sizeof(ks) / sizeof(ks[0]))];
    const std::vector<KnnResult> truth = KnnByDijkstra(g, cat_vecs[c], s, k);
    bucket.KnnQuery(&bucket_ctx, c, s, k, &from_bucket);
    ier.KnnQuery(&ier_ctx, c, s, k, &from_ier);
    ASSERT_EQ(from_bucket, truth)
        << "bucket-CH disagrees with the Dijkstra oracle; graph seed "
        << graph_seed << ", s=" << s << " category=" << c << " k=" << k;
    ASSERT_EQ(from_ier, truth)
        << "IER disagrees with the Dijkstra oracle; graph seed "
        << graph_seed << ", s=" << s << " category=" << c << " k=" << k;
    // One-to-many is definitionally kNN with k = |category| — check on a
    // sample (it is the most expensive of the three calls).
    if (qi % 8 != 0) continue;
    bucket.OneToManyQuery(&bucket_ctx, c, s, &one_to_many);
    bucket.KnnQuery(&bucket_ctx, c, s, cat_vecs[c].size(), &from_bucket);
    ASSERT_EQ(one_to_many, from_bucket)
        << "one-to-many != k=|category| kNN; graph seed " << graph_seed
        << ", s=" << s << " category=" << c;
  }
}

TEST(Differential, AllTechniquesAgreeOnTenThousandQueries) {
  RunDifferential(700, 20260809, 10000);
}

TEST(Differential, KnnStrategiesAgreeOnTwelveHundredQueries) {
  RunKnnDifferential(700, 20260810, 1200);
}

// A second network for the kNN family too, denser in POIs relative to
// its size so bucket scans regularly cross category boundaries.
TEST(Differential, KnnStrategiesAgreeOnSecondNetwork) {
  RunKnnDifferential(250, 661, 600);
}

// A second, structurally different network (other seed and size), so a
// bug tied to one generator layout cannot hide behind the main sweep.
TEST(Differential, AllTechniquesAgreeOnSecondNetwork) {
  RunDifferential(300, 977, 2000);
}

}  // namespace
}  // namespace roadnet
