#include "core/experiment.h"
#include "core/guidelines.h"

#include <memory>

#include "ch/ch_index.h"
#include "dijkstra/bidirectional.h"
#include "tests/test_util.h"
#include "workload/query_gen.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

TEST(Experiment, MeasuresBuildAndQueries) {
  Graph g = TestNetwork(500, 3);
  BuildResult build = Experiment::MeasureBuild(
      "CH", [&] { return std::make_unique<ChIndex>(g); });
  ASSERT_NE(build.index, nullptr);
  EXPECT_EQ(build.method, "CH");
  EXPECT_GT(build.preprocess_seconds, 0);
  EXPECT_GT(build.index_bytes, 0u);

  QuerySet set;
  set.name = "test";
  set.pairs = RandomPairs(g, 50, 5);
  QueryResult q = Experiment::MeasureQueries(build.index.get(), set);
  EXPECT_EQ(q.method, "CH");
  EXPECT_EQ(q.num_queries, 50u);
  EXPECT_GT(q.avg_distance_micros, 0);
  EXPECT_GT(q.avg_path_micros, 0);
}

TEST(Experiment, NullFactoryMeansNotApplicable) {
  BuildResult build = Experiment::MeasureBuild(
      "SILC", [] { return std::unique_ptr<PathIndex>(); });
  EXPECT_EQ(build.index, nullptr);
  EXPECT_EQ(build.index_bytes, 0u);
}

TEST(Experiment, MismatchCounting) {
  Graph g = TestNetwork(400, 7);
  ChIndex ch(g);
  BidirectionalDijkstra bidi(g);
  QuerySet set;
  set.name = "agree";
  set.pairs = RandomPairs(g, 80, 9);
  EXPECT_EQ(Experiment::CountDistanceMismatches(&ch, &bidi, set), 0u);
}

TEST(Guidelines, DefaultIsCh) {
  WorkloadProfile p;
  p.num_vertices = 20000000;
  p.space_constrained = true;
  EXPECT_EQ(RecommendMethod(p).method, "CH");
}

TEST(Guidelines, PathHeavySmallUnconstrainedIsSilc) {
  WorkloadProfile p;
  p.num_vertices = 200000;
  p.space_constrained = false;
  p.path_query_fraction = 0.9;
  EXPECT_EQ(RecommendMethod(p).method, "SILC");
}

TEST(Guidelines, DistanceHeavyLongRangeIsTnr) {
  WorkloadProfile p;
  p.num_vertices = 20000000;
  p.space_constrained = false;
  p.path_query_fraction = 0.1;
  p.long_range_fraction = 0.8;
  EXPECT_EQ(RecommendMethod(p).method, "TNR+CH");
}

TEST(Guidelines, SilcInfeasibleOnHugeNetworks) {
  // Beyond the all-pairs budget the recommendation degrades to TNR+CH or
  // CH, never SILC (the paper's first summary finding).
  WorkloadProfile p;
  p.num_vertices = 20000000;
  p.space_constrained = false;
  p.path_query_fraction = 0.9;
  p.long_range_fraction = 0.2;
  EXPECT_NE(RecommendMethod(p).method, "SILC");
}

TEST(Guidelines, NeverRecommendsPcpd) {
  for (uint32_t n : {1000u, 100000u, 10000000u}) {
    for (bool space : {true, false}) {
      for (double pf : {0.0, 0.5, 1.0}) {
        WorkloadProfile p;
        p.num_vertices = n;
        p.space_constrained = space;
        p.path_query_fraction = pf;
        EXPECT_NE(RecommendMethod(p).method, "PCPD");
      }
    }
  }
}

}  // namespace
}  // namespace roadnet
