// Byte-dribble fuzzing of the wire layer's incremental frame reassembly
// (server/event_loop.h FrameAssembler): every frame type delivered one
// byte at a time, and under seeded random segmentation, must come out
// identical to whole-frame delivery. TCP guarantees order, not
// boundaries — the assembler may see any split.

#include <cstring>
#include <string>
#include <vector>

#include "server/event_loop.h"
#include "server/wire.h"
#include "util/rng.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

// [u32 body_length][body], the stream framing WriteFrame produces.
std::string Framed(const std::string& body) {
  const uint32_t len = static_cast<uint32_t>(body.size());
  std::string out(sizeof(len), '\0');
  std::memcpy(out.data(), &len, sizeof(len));
  out.append(body);
  return out;
}

// One representative body per frame type the protocol defines.
std::vector<std::string> AllFrameBodies() {
  std::vector<std::string> bodies;

  wire::QueryRequest req;
  req.technique = wire::TechniqueId("ch");
  req.kind = wire::QueryKind::kPath;
  req.source = 123456;
  req.target = 654321;
  req.deadline_micros = 777;
  bodies.push_back(wire::EncodeQueryRequest(req));

  req.request_id = 0xfeedfacecafebeefull;
  bodies.push_back(wire::EncodeQueryRequestV2(req));

  wire::QueryResponse resp;
  resp.status = wire::Status::kOk;
  resp.distance = 42424242;
  resp.server_latency_ns = 987654321;
  resp.path = {9, 8, 7, 6, 5};
  bodies.push_back(wire::EncodeQueryResponse(resp));

  resp.request_id = 31337;
  bodies.push_back(wire::EncodeQueryResponseV2(resp));

  bodies.push_back(wire::EncodeStatsRequest());

  wire::StatsResponse stats;
  stats.served = 1000;
  stats.queue_depth = 3;
  stats.write_queue_bytes = 4096;
  stats.idle_reaped = 2;
  stats.loop_connections = {5, 7};
  stats.stages.push_back(wire::StageStatWire{1, 50, 100, 900});
  bodies.push_back(wire::EncodeStatsResponse(stats));

  bodies.push_back(wire::EncodeShutdownRequest());
  bodies.push_back(wire::EncodeShutdownResponse());

  wire::TraceConfigRequest cfg;
  cfg.sample_every = 8;
  cfg.slow_micros = 1500;
  bodies.push_back(wire::EncodeTraceConfigRequest(cfg));

  wire::TraceConfigResponse cfg_resp;
  cfg_resp.sample_every = 8;
  cfg_resp.slow_micros = 1500;
  bodies.push_back(wire::EncodeTraceConfigResponse(cfg_resp));

  wire::KnnRequest knn;
  knn.method = wire::KnnMethod::kIer;
  knn.category = 2;
  knn.k = 12;
  knn.source = 4242;
  bodies.push_back(wire::EncodeKnnRequest(knn));

  wire::KnnResponse knn_resp;
  knn_resp.status = wire::Status::kOk;
  knn_resp.entries = {{1, 100}, {2, 200}, {3, 300}};
  bodies.push_back(wire::EncodeKnnResponse(wire::kKnnReply, knn_resp));
  bodies.push_back(
      wire::EncodeKnnResponse(wire::kOneToManyReply, knn_resp));

  wire::OneToManyRequest otm;
  otm.category = 1;
  otm.source = 99;
  bodies.push_back(wire::EncodeOneToManyRequest(otm));

  return bodies;
}

TEST(WireFuzz, EveryFrameTypeSurvivesByteDribble) {
  for (const std::string& body : AllFrameBodies()) {
    SCOPED_TRACE("frame type " + std::to_string(
                     static_cast<int>(*wire::PeekType(body))));
    const std::string stream = Framed(body);
    FrameAssembler assembler;
    std::string got;
    for (size_t i = 0; i < stream.size(); ++i) {
      // Until the final byte lands there must be no frame (and no error).
      ASSERT_EQ(assembler.Next(&got), FrameAssembler::Result::kNeedMore)
          << "byte " << i;
      assembler.Feed(stream.data() + i, 1);
    }
    ASSERT_EQ(assembler.Next(&got), FrameAssembler::Result::kFrame);
    EXPECT_EQ(got, body);
    EXPECT_EQ(assembler.Next(&got), FrameAssembler::Result::kNeedMore);
    EXPECT_EQ(assembler.BufferedBytes(), 0u);
  }
}

TEST(WireFuzz, RandomSegmentationMatchesWholeFrameDelivery) {
  const std::vector<std::string> bodies = AllFrameBodies();
  // One long stream holding every frame type back to back, repeated so
  // splits land inside length prefixes, bodies, and across frames.
  std::string stream;
  std::vector<std::string> expected;
  for (int rep = 0; rep < 4; ++rep) {
    for (const std::string& body : bodies) {
      stream.append(Framed(body));
      expected.push_back(body);
    }
  }

  for (uint64_t seed = 1; seed <= 32; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    FrameAssembler assembler;
    std::vector<std::string> got;
    size_t pos = 0;
    while (pos < stream.size()) {
      // Chunk sizes biased small so most frames arrive fragmented.
      const size_t chunk =
          1 + rng.NextBelow(rng.NextBool(0.8) ? 7 : 64);
      const size_t n = std::min(chunk, stream.size() - pos);
      assembler.Feed(stream.data() + pos, n);
      pos += n;
      std::string body;
      FrameAssembler::Result r;
      while ((r = assembler.Next(&body)) == FrameAssembler::Result::kFrame) {
        got.push_back(body);
      }
      ASSERT_EQ(r, FrameAssembler::Result::kNeedMore);
    }
    EXPECT_EQ(got, expected);
    EXPECT_EQ(assembler.BufferedBytes(), 0u);
  }
}

TEST(WireFuzz, OversizedLengthPrefixIsAStickyError) {
  FrameAssembler assembler(/*max_body=*/64);
  const uint32_t huge = 65;
  char prefix[4];
  std::memcpy(prefix, &huge, sizeof(huge));
  // Dribble the prefix: the error must fire exactly when the length is
  // complete, before any body byte is read.
  std::string body;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(assembler.Next(&body), FrameAssembler::Result::kNeedMore);
    assembler.Feed(prefix + i, 1);
  }
  EXPECT_EQ(assembler.Next(&body), FrameAssembler::Result::kError);
  // Sticky: feeding a perfectly valid frame afterwards cannot revive
  // the stream (resync after garbage is not a thing).
  const std::string valid = Framed(wire::EncodeStatsRequest());
  assembler.Feed(valid.data(), valid.size());
  EXPECT_EQ(assembler.Next(&body), FrameAssembler::Result::kError);
}

TEST(WireFuzz, MaxSizeFrameIsAcceptedAtTheBoundary) {
  FrameAssembler assembler(/*max_body=*/64);
  const std::string at_cap(64, 'a');
  const std::string stream = Framed(at_cap);
  assembler.Feed(stream.data(), stream.size());
  std::string body;
  ASSERT_EQ(assembler.Next(&body), FrameAssembler::Result::kFrame);
  EXPECT_EQ(body, at_cap);
}

TEST(WireFuzz, DribbledFramesStillDecode) {
  // End to end through the codec layer: a frame reassembled from single
  // bytes decodes to the same struct as the original.
  wire::QueryRequest req;
  req.request_id = 0x1122334455667788ull;
  req.source = 17;
  req.target = 71;
  const std::string body = wire::EncodeQueryRequestV2(req);
  const std::string stream = Framed(body);
  FrameAssembler assembler;
  for (char c : stream) assembler.Feed(&c, 1);
  std::string got;
  ASSERT_EQ(assembler.Next(&got), FrameAssembler::Result::kFrame);
  const auto decoded = wire::DecodeQueryRequestV2(got);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->request_id, req.request_id);
  EXPECT_EQ(decoded->source, req.source);
  EXPECT_EQ(decoded->target, req.target);
}

}  // namespace
}  // namespace roadnet
