#include "io/serialize.h"

#include <cstdio>
#include <sstream>

#include "ch/ch_index.h"
#include "hl/hl_index.h"
#include "poi/poi_set.h"
#include "tests/test_util.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

TEST(GraphSerialization, RoundTripsInMemory) {
  Graph g = TestNetwork(500, 7);
  std::stringstream buffer;
  WriteGraph(g, buffer);
  std::string error;
  auto loaded = ReadGraph(buffer, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->NumVertices(), g.NumVertices());
  ASSERT_EQ(loaded->NumEdges(), g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_TRUE(loaded->Coord(v) == g.Coord(v));
    auto a = g.Neighbors(v);
    auto b = loaded->Neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);
  }
}

TEST(GraphSerialization, RoundTripsOnDisk) {
  Graph g = TestNetwork(300, 9);
  const std::string path = ::testing::TempDir() + "/roadnet_graph.bin";
  std::string error;
  ASSERT_TRUE(WriteGraphFile(g, path, &error)) << error;
  auto loaded = ReadGraphFile(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->NumVertices(), g.NumVertices());
  EXPECT_EQ(loaded->NumEdges(), g.NumEdges());
  std::remove(path.c_str());
}

TEST(GraphSerialization, RejectsGarbage) {
  std::stringstream buffer("this is not a graph file at all");
  std::string error;
  EXPECT_FALSE(ReadGraph(buffer, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(GraphSerialization, RejectsTruncation) {
  Graph g = TestNetwork(300, 11);
  std::stringstream buffer;
  WriteGraph(g, buffer);
  const std::string full = buffer.str();
  for (size_t cut : {size_t{4}, size_t{20}, full.size() / 2,
                     full.size() - 3}) {
    std::stringstream truncated(full.substr(0, cut));
    std::string error;
    EXPECT_FALSE(ReadGraph(truncated, &error).has_value())
        << "cut at " << cut;
  }
}

TEST(GraphSerialization, RejectsEverySingleByteFlip) {
  Graph g = TestNetwork(120, 17);
  std::stringstream buffer;
  WriteGraph(g, buffer);
  const std::string full = buffer.str();
  // A flip anywhere — magic, version, length, payload, or the CRC32
  // trailer itself — must be rejected, never parsed into a graph.
  for (size_t i = 0; i < full.size(); ++i) {
    std::string corrupt = full;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
    std::stringstream in(corrupt);
    std::string error;
    EXPECT_FALSE(ReadGraph(in, &error).has_value()) << "flip at byte " << i;
    EXPECT_FALSE(error.empty()) << "flip at byte " << i;
  }
}

TEST(GraphSerialization, ChecksumErrorIsDescriptive) {
  Graph g = TestNetwork(120, 18);
  std::stringstream buffer;
  WriteGraph(g, buffer);
  std::string corrupt = buffer.str();
  corrupt[corrupt.size() / 2] ^= 0x01;  // one bit, mid-payload
  std::stringstream in(corrupt);
  std::string error;
  EXPECT_FALSE(ReadGraph(in, &error).has_value());
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

TEST(ChSerialization, RejectsEverySingleByteFlip) {
  Graph g = TestNetwork(150, 19);
  ChIndex ch(g);
  std::stringstream buffer;
  ch.Serialize(buffer);
  const std::string full = buffer.str();
  // Stride through the file (it is larger than a graph file); every
  // sampled flip plus the first and last 64 bytes must be rejected.
  std::vector<size_t> positions;
  for (size_t i = 0; i < full.size(); i += 13) positions.push_back(i);
  for (size_t i = 0; i < 64 && i < full.size(); ++i) {
    positions.push_back(i);
    positions.push_back(full.size() - 1 - i);
  }
  for (size_t i : positions) {
    std::string corrupt = full;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
    std::stringstream in(corrupt);
    std::string error;
    EXPECT_EQ(ChIndex::Deserialize(g, in, &error), nullptr)
        << "flip at byte " << i;
    EXPECT_FALSE(error.empty()) << "flip at byte " << i;
  }
}

TEST(ChSerialization, RoundTripPreservesAnswers) {
  Graph g = TestNetwork(700, 13);
  ChIndex original(g);
  std::stringstream buffer;
  original.Serialize(buffer);
  std::string error;
  auto restored = ChIndex::Deserialize(g, buffer, &error);
  ASSERT_NE(restored, nullptr) << error;
  EXPECT_EQ(restored->NumShortcuts(), original.NumShortcuts());
  for (auto [s, t] : RandomPairs(g, 150, 5)) {
    EXPECT_EQ(restored->DistanceQuery(s, t), original.DistanceQuery(s, t));
    EXPECT_EQ(restored->PathQuery(s, t), original.PathQuery(s, t));
  }
  // The restored index remains correct against ground truth too.
  ExpectIndexCorrect(g, restored.get(), 60, 21);
}

TEST(ChSerialization, V3RoundTripPreservesRanksPermutationAndArcs) {
  Graph g = TestNetwork(600, 23);
  ChIndex original(g);
  std::stringstream buffer;
  original.Serialize(buffer);
  std::string error;
  auto restored = ChIndex::Deserialize(g, buffer, &error);
  ASSERT_NE(restored, nullptr) << error;
  // Rank permutation restored exactly.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(restored->RankOf(v), original.RankOf(v)) << "v=" << v;
  }
  EXPECT_EQ(restored->NumShortcuts(), original.NumShortcuts());
  EXPECT_EQ(restored->IndexBytes(), original.IndexBytes());
  // Byte-identical re-serialization pins every array — offsets, hot
  // arcs, and cold unpack records — not just the query-visible behavior.
  std::stringstream again;
  restored->Serialize(again);
  std::stringstream first;
  original.Serialize(first);
  EXPECT_EQ(again.str(), first.str());
}

TEST(ChSerialization, RejectsV2WithRerunHint) {
  Graph g = TestNetwork(200, 29);
  ChIndex ch(g);
  std::stringstream buffer;
  ch.Serialize(buffer);
  std::string data = buffer.str();
  // The version field is the little-endian uint32 right after the 8-byte
  // magic; rewriting it to 2 simulates a pre-rank-space index file.
  data[8] = 2;
  data[9] = data[10] = data[11] = 0;
  std::stringstream in(data);
  std::string error;
  EXPECT_EQ(ChIndex::Deserialize(g, in, &error), nullptr);
  EXPECT_NE(error.find("re-run preprocess"), std::string::npos) << error;
}

TEST(ChSerialization, RejectsWrongGraph) {
  Graph g1 = TestNetwork(500, 1);
  Graph g2 = TestNetwork(900, 2);
  ChIndex ch(g1);
  std::stringstream buffer;
  ch.Serialize(buffer);
  std::string error;
  EXPECT_EQ(ChIndex::Deserialize(g2, buffer, &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(ChSerialization, RejectsCorruptedArcTargets) {
  Graph g = TestNetwork(300, 3);
  ChIndex ch(g);
  std::stringstream buffer;
  ch.Serialize(buffer);
  std::string data = buffer.str();
  // Flip bytes near the end (inside the arc block) to force an
  // out-of-range target, and verify validation rejects it rather than
  // crashing later.
  for (size_t i = data.size() - 12; i < data.size() - 4; ++i) {
    data[i] = static_cast<char>(0xfe);
  }
  std::stringstream corrupted(data);
  std::string error;
  EXPECT_EQ(ChIndex::Deserialize(g, corrupted, &error), nullptr);
}

// --- Header / section-table region (graph v2, CH v3, HL v1) ---
//
// The CRC only covers the checksummed payload block; the 8-byte magic,
// the u32 version word and the u64 payload-length field sit in front of
// it. A flip there must still be rejected — by the magic check, the
// version check, or the length/trailer validation — and every format
// must pin that explicitly, so a future format change cannot move bytes
// out from under the CRC without a test noticing.

constexpr size_t kHeaderBytes = 8 + 4 + 8;  // magic, version, payload length

template <typename Reader>
void ExpectHeaderFlipsRejected(const std::string& full, Reader reader) {
  ASSERT_GT(full.size(), kHeaderBytes);
  for (size_t i = 0; i < kHeaderBytes; ++i) {
    std::string corrupt = full;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
    std::string error;
    EXPECT_FALSE(reader(corrupt, &error)) << "flip at header byte " << i;
    EXPECT_FALSE(error.empty()) << "flip at header byte " << i;
  }
}

TEST(HeaderRegionSerialization, GraphRejectsEveryHeaderByteFlip) {
  Graph g = TestNetwork(120, 31);
  std::stringstream buffer;
  WriteGraph(g, buffer);
  ExpectHeaderFlipsRejected(
      buffer.str(), [](const std::string& bytes, std::string* error) {
        std::stringstream in(bytes);
        return ReadGraph(in, error).has_value();
      });
}

TEST(HeaderRegionSerialization, ChRejectsEveryHeaderByteFlip) {
  Graph g = TestNetwork(150, 33);
  ChIndex ch(g);
  std::stringstream buffer;
  ch.Serialize(buffer);
  ExpectHeaderFlipsRejected(
      buffer.str(), [&g](const std::string& bytes, std::string* error) {
        std::stringstream in(bytes);
        return ChIndex::Deserialize(g, in, error) != nullptr;
      });
}

TEST(HeaderRegionSerialization, HlRejectsEveryHeaderByteFlip) {
  Graph g = TestNetwork(150, 35);
  ChIndex ch(g);
  HlIndex hl(g, ch);
  std::stringstream buffer;
  hl.Serialize(buffer);
  ExpectHeaderFlipsRejected(
      buffer.str(), [&](const std::string& bytes, std::string* error) {
        std::stringstream in(bytes);
        return HlIndex::Deserialize(g, ch, in, error) != nullptr;
      });
}

TEST(HeaderRegionSerialization, PoiRejectsEveryHeaderByteFlip) {
  Graph g = TestNetwork(150, 37);
  PoiConfig config;
  config.categories = {{"restaurant", 0.05}, {"fuel", 0.01}};
  config.seed = 37;
  const PoiSet pois = PoiSet::Generate(g, config);
  std::stringstream buffer;
  pois.Serialize(buffer);
  ExpectHeaderFlipsRejected(
      buffer.str(), [](const std::string& bytes, std::string* error) {
        std::stringstream in(bytes);
        return PoiSet::Deserialize(in, error) != nullptr;
      });
}

}  // namespace
}  // namespace roadnet
