// Edge cases of QueryEngine batch shapes that the network query service
// exercises constantly: empty batches, micro-batches far smaller than the
// worker pool, and single-worker pools. Each must complete without
// deadlock and produce the same answers and merged stats a sequential
// loop over one context would.

#include "engine/query_engine.h"

#include <utility>
#include <vector>

#include "dijkstra/bidirectional.h"
#include "dijkstra/dijkstra.h"
#include "tests/test_util.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

TEST(EngineEdge, EmptyBatchCompletes) {
  const Graph g = TestNetwork(200, 3);
  BidirectionalDijkstra index(g);
  QueryEngine engine(index, 4);
  const std::vector<std::pair<VertexId, VertexId>> queries;
  const BatchResult result = engine.Run(queries);
  EXPECT_TRUE(result.distances.empty());
  EXPECT_TRUE(result.paths.empty());
  EXPECT_EQ(result.stats.num_queries, 0u);
  EXPECT_EQ(result.stats.counters.vertices_settled, 0u);
  EXPECT_EQ(result.latency.Count(), 0u);
  // The engine must stay usable after an empty batch.
  const auto follow_up = RandomPairs(g, 10, 5);
  EXPECT_EQ(engine.Run(follow_up).distances.size(), follow_up.size());
}

TEST(EngineEdge, BatchSmallerThanWorkerPool) {
  const Graph g = TestNetwork(300, 7);
  BidirectionalDijkstra index(g);
  QueryEngine engine(index, 8);  // 8 workers, 3 queries
  const auto queries = RandomPairs(g, 3, 11);
  const BatchResult result = engine.Run(queries);
  ASSERT_EQ(result.distances.size(), 3u);
  Dijkstra oracle(g);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(result.distances[i],
              oracle.Run(queries[i].first, queries[i].second));
  }
  EXPECT_EQ(result.stats.num_queries, 3u);
  EXPECT_EQ(result.latency.Count(), 3u);
}

TEST(EngineEdge, SingleQuerySingleWorker) {
  const Graph g = TestNetwork(200, 9);
  BidirectionalDijkstra index(g);
  QueryEngine engine(index, 1);
  const auto queries = RandomPairs(g, 1, 13);
  const BatchResult result = engine.Run(queries);
  ASSERT_EQ(result.distances.size(), 1u);
  Dijkstra oracle(g);
  EXPECT_EQ(result.distances[0],
            oracle.Run(queries[0].first, queries[0].second));
}

// A single-worker engine's merged stats must equal what a sequential
// loop over one context accumulates — the pool adds concurrency, never
// different work.
TEST(EngineEdge, SingleWorkerStatsMatchSequentialLoop) {
  const Graph g = TestNetwork(400, 17);
  BidirectionalDijkstra index(g);
  const auto queries = RandomPairs(g, 100, 19);

  QueryEngine engine(index, 1);
  const BatchResult result = engine.Run(queries);
  ASSERT_EQ(result.distances.size(), queries.size());
  EXPECT_EQ(result.stats.num_threads, 1u);
  EXPECT_EQ(result.stats.stolen_chunks, 0u);  // nobody to steal from
  EXPECT_EQ(result.latency.Count(), queries.size());

  QueryCounters sequential;
  auto ctx = index.NewContext();
  for (auto [s, t] : queries) {
    const Distance d = index.DistanceQuery(ctx.get(), s, t);
    sequential += ctx->counters;
    (void)d;
  }
  EXPECT_EQ(result.stats.counters.vertices_settled, sequential.vertices_settled);
  EXPECT_EQ(result.stats.counters.edges_relaxed, sequential.edges_relaxed);
  EXPECT_EQ(result.stats.counters.heap_pushes, sequential.heap_pushes);
}

// Stats merging across many workers: per-query counter sums must be
// independent of the worker count and chunking.
TEST(EngineEdge, MergedCountersIndependentOfWorkerCount) {
  const Graph g = TestNetwork(400, 21);
  BidirectionalDijkstra index(g);
  const auto queries = RandomPairs(g, 64, 23);

  QueryEngine one(index, 1);
  QueryEngine many(index, 8);
  const BatchResult a = one.Run(queries);
  const BatchResult b = many.Run(queries);
  EXPECT_EQ(a.distances, b.distances);
  EXPECT_EQ(a.stats.counters.vertices_settled, b.stats.counters.vertices_settled);
  EXPECT_EQ(a.stats.counters.edges_relaxed, b.stats.counters.edges_relaxed);
  EXPECT_EQ(a.stats.counters.heap_pushes, b.stats.counters.heap_pushes);
  EXPECT_EQ(b.latency.Count(), queries.size());
}

TEST(EngineEdge, RepeatedSmallBatchesDoNotDeadlock) {
  const Graph g = TestNetwork(200, 25);
  BidirectionalDijkstra index(g);
  QueryEngine engine(index, 4);
  for (int round = 0; round < 50; ++round) {
    const auto queries = RandomPairs(g, round % 3, 31 + round);
    const BatchResult result = engine.Run(queries);
    EXPECT_EQ(result.distances.size(), queries.size());
  }
}

}  // namespace
}  // namespace roadnet
