// R10 good fixture: wrapper types only, every annotation resolves to a
// Mutex member of the same class, and every Mutex guards a field.
#ifndef ROADNET_LINT_FIXTURE_GOOD_R10_H_
#define ROADNET_LINT_FIXTURE_GOOD_R10_H_

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fixture {

class ShardRegistry {
 public:
  void Touch();

 private:
  mutable Mutex mu_;
  CondVar cv_;
  int hits_ ROADNET_GUARDED_BY(mu_) = 0;
  int* slots_ ROADNET_PT_GUARDED_BY(mu_) = nullptr;
};

}  // namespace fixture

#endif  // ROADNET_LINT_FIXTURE_GOOD_R10_H_
