// Lint fixture: R8 must flag every non-monotonic clock read on a
// serving/observability timing path.
#include <chrono>
#include <cstdint>
#include <sys/time.h>

namespace roadnet {

uint64_t BadWallClockStamp() {
  // system_clock steps under NTP: stage windows stamped with it can run
  // backwards across threads.
  auto now = std::chrono::system_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          now.time_since_epoch())
          .count());
}

uint64_t BadGettimeofdayStamp() {
  struct timeval tv;
  gettimeofday(&tv, nullptr);
  return static_cast<uint64_t>(tv.tv_sec) * 1000000ull +
         static_cast<uint64_t>(tv.tv_usec);
}

uint64_t BadHighResolutionStamp() {
  // high_resolution_clock is allowed to alias system_clock — unspecified
  // monotonicity is as bad as none.
  auto now = std::chrono::high_resolution_clock::now();
  return static_cast<uint64_t>(now.time_since_epoch().count());
}

}  // namespace roadnet
