// Lint fixture: the steady_clock idiom R8 wants — one monotonic clock,
// durations as nanosecond deltas against a fixed epoch.
#include <chrono>
#include <cstdint>

namespace roadnet {

uint64_t GoodMonotonicStamp(std::chrono::steady_clock::time_point epoch) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

}  // namespace roadnet
