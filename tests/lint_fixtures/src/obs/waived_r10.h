// R10 waiver fixture: a Mutex that legitimately guards no field (it
// only orders a sleep/notify handshake around an atomic predicate),
// suppressed with a reasoned waiver the way src/server/server.h's
// drain_mu_ is.
#ifndef ROADNET_LINT_FIXTURE_WAIVED_R10_H_
#define ROADNET_LINT_FIXTURE_WAIVED_R10_H_

#include <atomic>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fixture {

class Drainer {
 public:
  void Wait();

 private:
  std::atomic<int> in_flight_{0};
  // roadnet-lint: allow(R10 handshake-only mutex; the predicate is the atomic above)
  Mutex drain_mu_;
  CondVar drain_cv_;
};

}  // namespace fixture

#endif  // ROADNET_LINT_FIXTURE_WAIVED_R10_H_
