// R10 bad fixture: three distinct lock-discipline breaks in one class —
// a raw std::mutex member (invisible to Clang Thread Safety Analysis,
// which only sees the annotated roadnet::Mutex wrapper), a GUARDED_BY
// naming a mutex that does not exist in the class, and a Mutex member
// that guards nothing.
#ifndef ROADNET_LINT_FIXTURE_BAD_R10_H_
#define ROADNET_LINT_FIXTURE_BAD_R10_H_

#include <mutex>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fixture {

class ShardRegistry {
 public:
  void Touch();

 private:
  std::mutex raw_mu_;
  Mutex idle_mu_;
  int hits_ ROADNET_GUARDED_BY(absent_mu_) = 0;
};

}  // namespace fixture

#endif  // ROADNET_LINT_FIXTURE_BAD_R10_H_
