// R12 bad fixture: wire-decode reads with no remaining-bytes check in
// the enclosing function — a truncated frame reads out of bounds.
#include <cstdint>
#include <cstring>
#include <string>

namespace fixture {

uint32_t DecodeCount(const std::string& body) {
  uint32_t count = 0;
  std::memcpy(&count, body.data() + 1, sizeof(count));
  return count;
}

char DecodeTag(const std::string& body) {
  return body[0];
}

}  // namespace fixture
