// R12 good fixture: the same reads, each behind an explicit
// remaining-bytes check in the same function.
#include <cstdint>
#include <cstring>
#include <string>

namespace fixture {

bool DecodeCount(const std::string& body, uint32_t* count) {
  const size_t pos = 1;
  if (pos + sizeof(*count) > body.size()) return false;
  std::memcpy(count, body.data() + pos, sizeof(*count));
  return true;
}

bool DecodeTag(const std::string& body, char* tag) {
  if (body.empty()) return false;
  *tag = body[0];
  return true;
}

}  // namespace fixture
