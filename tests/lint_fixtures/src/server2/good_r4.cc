// Fixture: R4 stays silent when the notify runs while the lock is held,
// and for notifies on member condvars of long-lived owners.
#include <condition_variable>
#include <mutex>

namespace roadnet {

struct Pending {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
};

void CompleteSafe(Pending* p) {
  std::lock_guard<std::mutex> lock(p->mu);
  p->done = true;
  p->cv.notify_one();  // waiter cannot destroy the condvar while we hold mu
}

class Queue {
 public:
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    // Member condvar of a long-lived object: after-unlock notify is the
    // standard (and faster) pattern.
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
};

}  // namespace roadnet
