// Fixture: R4 must flag a notify on a pointer-reached condvar outside
// the lock scope — the exact shape of the PR 3 TSan race: the waiter
// owns the Pending on its stack and destroys it the moment it observes
// done, so the notify can touch a dead condvar.
#include <condition_variable>
#include <mutex>

namespace roadnet {

struct Pending {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
};

void CompleteRacy(Pending* p) {
  {
    std::lock_guard<std::mutex> lock(p->mu);
    p->done = true;
  }
  p->cv.notify_one();  // lock released: waiter may already be gone
}

}  // namespace roadnet
