// Fixture: an immutable *Index class — R2 stays silent. Constructors,
// statics, = default/delete, and const methods are all exempt.
#ifndef FIXTURE_GOOD_R2_H_
#define FIXTURE_GOOD_R2_H_

namespace roadnet {

class CleanIndex {
 public:
  explicit CleanIndex(int n) : n_(n) {}
  CleanIndex(const CleanIndex&) = delete;
  CleanIndex& operator=(const CleanIndex&) = delete;

  static CleanIndex FromFile(const char* path);

  int Size() const { return n_; }

 private:
  void BuildInternal();  // private non-const: construction helper, exempt

  int n_;
};

}  // namespace roadnet

#endif  // FIXTURE_GOOD_R2_H_
