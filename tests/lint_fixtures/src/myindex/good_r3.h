// Fixture: context-taking query entry points — R3 stays silent, and a
// call site (`return DistanceQuery(...)`) is not mistaken for a
// declaration.
#ifndef FIXTURE_GOOD_R3_H_
#define FIXTURE_GOOD_R3_H_

namespace roadnet {

using Distance = unsigned;
using VertexId = unsigned;

class QueryContext;

class CleanQuerier {
 public:
  Distance DistanceQuery(QueryContext* ctx, VertexId s, VertexId t) const;

  Distance Twice(QueryContext* ctx, VertexId s, VertexId t) const {
    return DistanceQuery(ctx, s, t) + DistanceQuery(ctx, t, s);
  }
};

}  // namespace roadnet

#endif  // FIXTURE_GOOD_R3_H_
