// Fixture: R2 must flag a public non-const method on an *Index class.
#ifndef FIXTURE_BAD_R2_H_
#define FIXTURE_BAD_R2_H_

namespace roadnet {

class DemoIndex {
 public:
  explicit DemoIndex(int n) : n_(n) {}

  int Size() const { return n_; }

  // Mutates the index after construction: breaks the shared-immutable
  // thread-safety contract.
  void SetSize(int n) { n_ = n; }

 private:
  int n_;
};

}  // namespace roadnet

#endif  // FIXTURE_BAD_R2_H_
