// Fixture: R3 must flag a query entry point without a QueryContext.
#ifndef FIXTURE_BAD_R3_H_
#define FIXTURE_BAD_R3_H_

namespace roadnet {

using Distance = unsigned;
using VertexId = unsigned;

class DemoQuerier {
 public:
  // Hidden shared scratch: no context parameter.
  Distance DistanceQuery(VertexId s, VertexId t) const;
};

}  // namespace roadnet

#endif  // FIXTURE_BAD_R3_H_
