// Fixture: R1 must flag a FindEdge call on the query path.
namespace roadnet {

struct Edge {
  unsigned target;
  unsigned weight;
};

const Edge* FindEdge(unsigned a, unsigned b);

unsigned UnpackHop(unsigned a, unsigned b) {
  const Edge* e = FindEdge(a, b);  // per-hop edge search: the pre-PR-4 bug
  return e != nullptr ? e->weight : 0;
}

}  // namespace roadnet
