// R11 bad fixture: a settle loop that touches the allocator three ways —
// a per-vertex make_unique, a std::function built per iteration, and a
// push_back on a vector this file never reserves.
#include <functional>
#include <memory>
#include <vector>

namespace fixture {

struct Heap {
  bool Empty() const;
  unsigned PopMin();
};

unsigned Run(Heap& heap, std::vector<unsigned>& order) {
  unsigned sum = 0;
  while (!heap.Empty()) {
    const unsigned u = heap.PopMin();
    auto box = std::make_unique<unsigned>(u);
    std::function<unsigned(unsigned)> weigh = [u](unsigned w) {
      return w + u;
    };
    sum += weigh(*box);
    order.push_back(u);
  }
  return sum;
}

}  // namespace fixture
