// Fixture: arc-index resolution — no edge search, R1 stays silent.
// A comment mentioning FindEdge must not count as a finding.
namespace roadnet {

struct ArcUnpack {
  unsigned lo;
  unsigned hi;
};

unsigned ArcSourceOf(const ArcUnpack* unpack, unsigned arc) {
  return unpack[arc].lo;  // precomputed child arc index, O(1)
}

}  // namespace roadnet
