// R11 good fixture: the same settle loop with its capacity fixed before
// the search — the loop body never touches the allocator.
#include <vector>

namespace fixture {

struct Heap {
  bool Empty() const;
  unsigned PopMin();
};

unsigned Run(Heap& heap, std::vector<unsigned>& order, unsigned n) {
  order.reserve(n);
  unsigned sum = 0;
  while (!heap.Empty()) {
    const unsigned u = heap.PopMin();
    sum += u;
    order.push_back(u);
  }
  return sum;
}

}  // namespace fixture
