// Fixture: explicit-seed POI placement — R9 stays silent. A seeded
// mt19937 is tolerated; the repo convention is roadnet::Rng.
#include <cstdint>
#include <random>

namespace roadnet {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t Next() { return state_ += 0x9e3779b97f4a7c15ULL; }

 private:
  uint64_t state_;
};

uint64_t PlacePoi(uint64_t seed, uint64_t n) {
  Rng rng(seed);
  return rng.Next() % n;
}

uint64_t SampleStd(uint64_t seed, uint64_t n) {
  std::mt19937 gen(static_cast<unsigned>(seed));  // explicitly seeded
  return gen() % n;
}

}  // namespace roadnet
