// Fixture: R9 must flag nondeterministic randomness and wall-clock
// seeding in POI placement / kNN workload code (R5's contract extended
// to src/poi and src/knn).
#include <cstdlib>
#include <ctime>
#include <random>

namespace roadnet {

unsigned PlacePoi(unsigned n) {
  return static_cast<unsigned>(rand()) % n;  // libc PRNG: unseeded, global
}

unsigned SampleCategory(unsigned n) {
  std::mt19937 gen;  // default-constructed: implementation-defined seed
  return static_cast<unsigned>(gen()) % n;
}

unsigned WallClockSeed() {
  return static_cast<unsigned>(time(nullptr));  // irreproducible placement
}

}  // namespace roadnet
