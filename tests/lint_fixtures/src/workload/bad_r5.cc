// Fixture: R5 must flag nondeterministic randomness and wall-clock
// seeding in generator/workload code.
#include <cstdlib>
#include <ctime>
#include <random>

namespace roadnet {

unsigned SampleVertex(unsigned n) {
  return static_cast<unsigned>(rand()) % n;  // libc PRNG: unseeded, global
}

unsigned SampleSeeded(unsigned n) {
  std::mt19937 gen;  // default-constructed: implementation-defined seed
  return static_cast<unsigned>(gen()) % n;
}

unsigned WallClockSeed() {
  return static_cast<unsigned>(time(nullptr));  // irreproducible runs
}

}  // namespace roadnet
