// Fixture: R7 must flag the libstdc++ internal header and the
// namespace leak — both in one header.
#ifndef FIXTURE_BAD_R7_H_
#define FIXTURE_BAD_R7_H_

#include <bits/stdc++.h>

using namespace std;

inline int Answer() { return 42; }

#endif  // FIXTURE_BAD_R7_H_
