// Fixture: standard headers, qualified names — R7 stays silent.
#ifndef FIXTURE_GOOD_R7_H_
#define FIXTURE_GOOD_R7_H_

#include <string>
#include <vector>

inline std::vector<std::string> Names() { return {"a", "b"}; }

#endif  // FIXTURE_GOOD_R7_H_
