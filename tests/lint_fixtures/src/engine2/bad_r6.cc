// Fixture: R6 must flag direct writes to QueryCounters fields — they
// bypass the ROADNET_DISABLE_COUNTERS guard and survive the
// no-counters build.
#include <cstdint>

namespace roadnet {

struct QueryCounters {
  uint64_t vertices_settled = 0;
  uint64_t edges_relaxed = 0;
  void Settle(uint64_t n = 1) { vertices_settled += n; }
};

struct Context {
  QueryCounters counters;
};

void Relax(Context* ctx) {
  ctx->counters.vertices_settled += 1;  // bypasses the guarded helper
  ctx->counters.edges_relaxed++;        // same
}

}  // namespace roadnet
