// Fixture: counter updates through the guarded helpers, plus reads and
// comparisons of the fields — R6 stays silent.
#include <cstdint>

namespace roadnet {

struct QueryCounters {
  uint64_t vertices_settled = 0;
  uint64_t edges_relaxed = 0;
  void Settle(uint64_t n = 1) { vertices_settled += n; }
  void RelaxEdge(uint64_t n = 1) { edges_relaxed += n; }
};

struct Context {
  QueryCounters counters;
};

uint64_t Relax(Context* ctx) {
  ctx->counters.Settle();
  ctx->counters.RelaxEdge(3);
  if (ctx->counters.vertices_settled == 0) return 0;  // read: fine
  return ctx->counters.edges_relaxed;                 // read: fine
}

}  // namespace roadnet
