// Fixture: a reasoned waiver suppresses the finding — the file must
// lint clean (zero unwaived findings) while reporting one waived
// finding. Uses R4, which applies to every path.
#include <condition_variable>
#include <mutex>

namespace roadnet {

struct Pending {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
};

void Complete(Pending* p) {
  {
    std::lock_guard<std::mutex> lock(p->mu);
    p->done = true;
  }
  // roadnet-lint: allow(R4 fixture: waiter joins the thread before destroying Pending, so the after-unlock notify cannot dangle)
  p->cv.notify_one();
}

}  // namespace roadnet
