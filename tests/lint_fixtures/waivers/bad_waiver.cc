// Fixture: a waiver without a reason is itself a finding (W1) and does
// not suppress the R4 finding it sits on.
#include <condition_variable>
#include <mutex>

namespace roadnet {

struct Pending {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
};

void Complete(Pending* p) {
  {
    std::lock_guard<std::mutex> lock(p->mu);
    p->done = true;
  }
  // roadnet-lint: allow(R4)
  p->cv.notify_one();
}

}  // namespace roadnet
