// Fixture: a waiver for a different rule does not suppress the R4
// finding — the file must still fail the lint.
#include <condition_variable>
#include <mutex>

namespace roadnet {

struct Pending {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
};

void Complete(Pending* p) {
  {
    std::lock_guard<std::mutex> lock(p->mu);
    p->done = true;
  }
  // roadnet-lint: allow(R1 wrong rule id: does not cover the R4 finding below)
  p->cv.notify_one();
}

}  // namespace roadnet
