#include "spatial/point.h"
#include "spatial/poi_grid.h"
#include "spatial/rect.h"

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "tests/test_util.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

TEST(Point, LInfDistance) {
  EXPECT_EQ(LInfDistance({0, 0}, {3, -4}), 4);
  EXPECT_EQ(LInfDistance({-5, 2}, {-5, 2}), 0);
  EXPECT_EQ(LInfDistance({1, 1}, {10, 5}), 9);
}

TEST(Point, SquaredEuclidean) {
  EXPECT_EQ(SquaredEuclidean({0, 0}, {3, 4}), 25);
  EXPECT_EQ(SquaredEuclidean({-1, -1}, {2, 3}), 25);
}

TEST(Rect, EmptyAndExpand) {
  Rect r = Rect::Empty();
  EXPECT_TRUE(r.IsEmpty());
  r.Expand({5, 7});
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_TRUE(r.Contains({5, 7}));
  r.Expand({-3, 10});
  EXPECT_TRUE(r.Contains({0, 8}));
  EXPECT_FALSE(r.Contains({0, 11}));
}

TEST(Rect, Intersection) {
  Rect a{0, 0, 10, 10};
  Rect b{5, 5, 15, 15};
  Rect c{11, 0, 20, 10};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(Rect::Empty().Intersects(a));
}

TEST(Rect, SegmentCrossing) {
  Rect r{0, 0, 10, 10};
  EXPECT_TRUE(SegmentCrossesRect(r, {5, 5}, {20, 5}));   // inside -> outside
  EXPECT_TRUE(SegmentCrossesRect(r, {-5, 5}, {5, 5}));   // outside -> inside
  EXPECT_FALSE(SegmentCrossesRect(r, {1, 1}, {9, 9}));   // fully inside
  EXPECT_FALSE(SegmentCrossesRect(r, {20, 20}, {30, 30}));  // fully outside
}

TEST(Rect, BoundingBox) {
  std::vector<Point> pts = {{3, 4}, {-1, 9}, {7, 0}};
  Rect r = BoundingBox(pts.begin(), pts.end());
  EXPECT_EQ(r.min_x, -1);
  EXPECT_EQ(r.max_x, 7);
  EXPECT_EQ(r.min_y, 0);
  EXPECT_EQ(r.max_y, 9);
}

// --- PoiGrid: the IER candidate generator ---

// Streams every POI and checks the order is exactly ascending
// (squared Euclidean distance, vertex id) — the total order IER's
// strict termination rule depends on.
void ExpectGridStreamsInOrder(const Graph& g,
                              const std::vector<VertexId>& pois,
                              Point query) {
  PoiGrid grid(g, pois);
  std::vector<std::pair<int64_t, VertexId>> want;
  want.reserve(pois.size());
  for (VertexId v : pois) {
    want.emplace_back(SquaredEuclidean(g.Coord(v), query), v);
  }
  std::sort(want.begin(), want.end());

  PoiGrid::Cursor cursor;
  grid.Begin(&cursor, query);
  VertexId poi = 0;
  int64_t sq = 0;
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_TRUE(grid.Next(&cursor, &poi, &sq)) << "stream short at " << i;
    EXPECT_EQ(sq, want[i].first) << "at position " << i;
    EXPECT_EQ(poi, want[i].second) << "at position " << i;
  }
  EXPECT_FALSE(grid.Next(&cursor, &poi, &sq)) << "stream did not end";
  // A cursor that already ended stays ended.
  EXPECT_FALSE(grid.Next(&cursor, &poi, &sq));
}

TEST(PoiGrid, EmptyListYieldsNothing) {
  Graph g = TestNetwork(50, 41);
  PoiGrid grid(g, std::span<const VertexId>{});
  EXPECT_EQ(grid.NumPois(), 0u);
  PoiGrid::Cursor cursor;
  grid.Begin(&cursor, Point{3, 3});
  VertexId poi = 0;
  int64_t sq = 0;
  EXPECT_FALSE(grid.Next(&cursor, &poi, &sq));
}

TEST(PoiGrid, DuplicateCoordinatesCollapseToOneCellAndStreamById) {
  // Every vertex at the same point: a degenerate bounding box. The grid
  // must collapse to one cell and emit the POIs ascending by id (all
  // squared distances tie).
  GraphBuilder b(6);
  for (VertexId v = 0; v < 6; ++v) b.SetCoord(v, Point{7, -3});
  for (VertexId v = 0; v + 1 < 6; ++v) b.AddEdge(v, v + 1, 1);
  Graph g = std::move(b).Build();
  const std::vector<VertexId> pois = {5, 1, 3};  // builder order irrelevant
  PoiGrid grid(g, pois);
  EXPECT_EQ(grid.CellsX(), 1u);
  EXPECT_EQ(grid.CellsY(), 1u);
  ExpectGridStreamsInOrder(g, pois, Point{7, -3});   // on the point
  ExpectGridStreamsInOrder(g, pois, Point{-100, 50});  // far away
}

TEST(PoiGrid, StreamOrderMatchesBruteForceSort) {
  Graph g = TestNetwork(400, 42);
  Rng rng(99);
  std::vector<VertexId> pois;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (rng.NextBool(0.05)) pois.push_back(v);
  }
  ASSERT_GT(pois.size(), 4u);
  for (int qi = 0; qi < 20; ++qi) {
    const auto v = static_cast<VertexId>(rng.NextBelow(g.NumVertices()));
    ExpectGridStreamsInOrder(g, pois, g.Coord(v));
  }
  // Query points outside the bounding box exercise ring clamping.
  ExpectGridStreamsInOrder(g, pois, Point{-1000000, -1000000});
  ExpectGridStreamsInOrder(g, pois, Point{1000000, 0});
}

}  // namespace
}  // namespace roadnet
