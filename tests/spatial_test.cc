#include "spatial/point.h"
#include "spatial/rect.h"

#include "gtest/gtest.h"

namespace roadnet {
namespace {

TEST(Point, LInfDistance) {
  EXPECT_EQ(LInfDistance({0, 0}, {3, -4}), 4);
  EXPECT_EQ(LInfDistance({-5, 2}, {-5, 2}), 0);
  EXPECT_EQ(LInfDistance({1, 1}, {10, 5}), 9);
}

TEST(Point, SquaredEuclidean) {
  EXPECT_EQ(SquaredEuclidean({0, 0}, {3, 4}), 25);
  EXPECT_EQ(SquaredEuclidean({-1, -1}, {2, 3}), 25);
}

TEST(Rect, EmptyAndExpand) {
  Rect r = Rect::Empty();
  EXPECT_TRUE(r.IsEmpty());
  r.Expand({5, 7});
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_TRUE(r.Contains({5, 7}));
  r.Expand({-3, 10});
  EXPECT_TRUE(r.Contains({0, 8}));
  EXPECT_FALSE(r.Contains({0, 11}));
}

TEST(Rect, Intersection) {
  Rect a{0, 0, 10, 10};
  Rect b{5, 5, 15, 15};
  Rect c{11, 0, 20, 10};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(Rect::Empty().Intersects(a));
}

TEST(Rect, SegmentCrossing) {
  Rect r{0, 0, 10, 10};
  EXPECT_TRUE(SegmentCrossesRect(r, {5, 5}, {20, 5}));   // inside -> outside
  EXPECT_TRUE(SegmentCrossesRect(r, {-5, 5}, {5, 5}));   // outside -> inside
  EXPECT_FALSE(SegmentCrossesRect(r, {1, 1}, {9, 9}));   // fully inside
  EXPECT_FALSE(SegmentCrossesRect(r, {20, 20}, {30, 30}));  // fully outside
}

TEST(Rect, BoundingBox) {
  std::vector<Point> pts = {{3, 4}, {-1, 9}, {7, 0}};
  Rect r = BoundingBox(pts.begin(), pts.end());
  EXPECT_EQ(r.min_x, -1);
  EXPECT_EQ(r.max_x, 7);
  EXPECT_EQ(r.min_y, 0);
  EXPECT_EQ(r.max_y, 9);
}

}  // namespace
}  // namespace roadnet
