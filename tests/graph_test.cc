#include "graph/graph.h"

#include <cmath>
#include <sstream>

#include "graph/connectivity.h"
#include "graph/dimacs.h"
#include "graph/generator.h"
#include "tests/test_util.h"
#include "gtest/gtest.h"

namespace roadnet {
namespace {

TEST(GraphBuilder, BuildsCsrWithSortedNeighbors) {
  GraphBuilder b(4);
  b.AddEdge(0, 2, 5);
  b.AddEdge(0, 1, 3);
  b.AddEdge(2, 3, 7);
  Graph g = std::move(b).Build();
  EXPECT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.NumEdges(), 3u);
  auto n0 = g.Neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0].to, 1u);
  EXPECT_EQ(n0[1].to, 2u);
  EXPECT_EQ(g.Degree(3), 1u);
}

TEST(GraphBuilder, CollapsesParallelEdgesToMinWeight) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 9);
  b.AddEdge(1, 0, 4);
  b.AddEdge(0, 1, 6);
  Graph g = std::move(b).Build();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.EdgeWeight(0, 1), std::optional<Weight>(4));
  EXPECT_EQ(g.EdgeWeight(1, 0), std::optional<Weight>(4));
}

TEST(GraphBuilder, DropsSelfLoops) {
  GraphBuilder b(2);
  b.AddEdge(0, 0, 1);
  b.AddEdge(0, 1, 2);
  Graph g = std::move(b).Build();
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(Graph, EdgeWeightAbsent) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 2);
  Graph g = std::move(b).Build();
  EXPECT_FALSE(g.EdgeWeight(0, 2).has_value());
  EXPECT_FALSE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(0, 1));
}

TEST(Graph, BoundsCoverAllCoords) {
  Graph g = TestNetwork(300, 3);
  const Rect& b = g.Bounds();
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_TRUE(b.Contains(g.Coord(v)));
  }
}

TEST(Connectivity, DetectsComponents) {
  GraphBuilder b(5);
  b.AddEdge(0, 1, 1);
  b.AddEdge(2, 3, 1);
  Graph g = std::move(b).Build();
  EXPECT_FALSE(IsConnected(g));
  uint32_t count = 0;
  auto labels = ConnectedComponents(g, &count);
  EXPECT_EQ(count, 3u);  // {0,1}, {2,3}, {4}
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_NE(labels[0], labels[2]);
}

TEST(Connectivity, LargestComponentExtraction) {
  GraphBuilder b(6);
  b.AddEdge(0, 1, 1);
  b.AddEdge(1, 2, 1);
  b.AddEdge(3, 4, 1);
  Graph g = std::move(b).Build();
  std::vector<VertexId> mapping;
  Graph largest = LargestComponent(g, &mapping);
  EXPECT_EQ(largest.NumVertices(), 3u);
  EXPECT_EQ(largest.NumEdges(), 2u);
  EXPECT_TRUE(IsConnected(largest));
  EXPECT_NE(mapping[0], kInvalidVertex);
  EXPECT_EQ(mapping[3], kInvalidVertex);
  EXPECT_EQ(mapping[5], kInvalidVertex);
}

TEST(Generator, ProducesConnectedBoundedDegreeNetwork) {
  Graph g = TestNetwork(1000, 42);
  EXPECT_GT(g.NumVertices(), 800u);
  EXPECT_TRUE(IsConnected(g));
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_LE(g.Degree(v), 10u);  // degree-bounded (Section 2)
  }
}

TEST(Generator, DeterministicForSameSeed) {
  Graph a = TestNetwork(500, 7);
  Graph b = TestNetwork(500, 7);
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    EXPECT_TRUE(a.Coord(v) == b.Coord(v));
    auto na = a.Neighbors(v);
    auto nb = b.Neighbors(v);
    ASSERT_EQ(na.size(), nb.size());
    for (size_t i = 0; i < na.size(); ++i) EXPECT_TRUE(na[i] == nb[i]);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  Graph a = TestNetwork(500, 7);
  Graph b = TestNetwork(500, 8);
  bool differs = a.NumVertices() != b.NumVertices() ||
                 a.NumEdges() != b.NumEdges();
  if (!differs) {
    for (VertexId v = 0; v < a.NumVertices() && !differs; ++v) {
      differs = !(a.Coord(v) == b.Coord(v));
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Generator, HighwaysAreFasterThanLocalRoads) {
  // Edge weight per unit of Euclidean length should be visibly smaller on
  // highway rows/columns. Proxy check: the minimum weight/length ratio
  // over all edges is well below the maximum.
  Graph g = TestNetwork(900, 11);
  double min_ratio = 1e9, max_ratio = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const Arc& a : g.Neighbors(v)) {
      const double len = std::sqrt(
          static_cast<double>(SquaredEuclidean(g.Coord(v), g.Coord(a.to))));
      if (len < 1) continue;
      const double r = a.weight / len;
      min_ratio = std::min(min_ratio, r);
      max_ratio = std::max(max_ratio, r);
    }
  }
  EXPECT_LT(min_ratio * 2, max_ratio);
}

TEST(Dimacs, RoundTripsGeneratedNetwork) {
  Graph g = TestNetwork(300, 5);
  std::stringstream gr, co;
  WriteDimacs(g, gr, co);
  std::string error;
  auto parsed = ReadDimacs(gr, co, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->NumVertices(), g.NumVertices());
  ASSERT_EQ(parsed->NumEdges(), g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_TRUE(parsed->Coord(v) == g.Coord(v));
    auto na = g.Neighbors(v);
    auto nb = parsed->Neighbors(v);
    ASSERT_EQ(na.size(), nb.size());
    for (size_t i = 0; i < na.size(); ++i) EXPECT_TRUE(na[i] == nb[i]);
  }
}

TEST(Dimacs, RejectsMalformedHeader) {
  std::stringstream gr("p xx 3 2\na 1 2 5\na 2 3 5\n");
  std::stringstream co("p aux sp co 3\nv 1 0 0\nv 2 1 1\nv 3 2 2\n");
  std::string error;
  EXPECT_FALSE(ReadDimacs(gr, co, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Dimacs, RejectsOutOfRangeVertex) {
  std::stringstream gr("p sp 3 1\na 1 9 5\n");
  std::stringstream co("p aux sp co 3\nv 1 0 0\nv 2 1 1\nv 3 2 2\n");
  std::string error;
  EXPECT_FALSE(ReadDimacs(gr, co, &error).has_value());
}

TEST(Dimacs, RejectsArcCountMismatch) {
  std::stringstream gr("p sp 3 5\na 1 2 5\n");
  std::stringstream co("p aux sp co 3\nv 1 0 0\nv 2 1 1\nv 3 2 2\n");
  std::string error;
  EXPECT_FALSE(ReadDimacs(gr, co, &error).has_value());
}

TEST(Dimacs, SkipsComments) {
  std::stringstream gr("c header comment\np sp 2 1\nc mid comment\na 1 2 7\n");
  std::stringstream co("c comment\np aux sp co 2\nv 1 0 0\nv 2 5 5\n");
  std::string error;
  auto g = ReadDimacs(gr, co, &error);
  ASSERT_TRUE(g.has_value()) << error;
  EXPECT_EQ(g->EdgeWeight(0, 1), std::optional<Weight>(7));
}

}  // namespace
}  // namespace roadnet
