// Self-test of tools/roadnet_lint: every rule R1..R12 must flag its
// known-bad fixture and stay silent on the known-good twin; the waiver
// mechanism must suppress with a reason, fail without one (W1), and
// ignore waivers naming the wrong rule. The binary is exercised too:
// exit 1 on each bad fixture, exit 0 on the good set and on the real
// repository tree (the check.sh gate).
//
// Fixtures live in tests/lint_fixtures/, laid out like the repo
// (src/ch/..., src/workload/...) because rule applicability is
// path-based. The tree is excluded from normal scans by its
// lint_fixtures path component.

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "roadnet_lint/lint.h"

namespace roadnet::lint {
namespace {

LintResult LintFiles(const std::vector<std::string>& rel_paths) {
  std::vector<SourceFile> files;
  for (const std::string& rel : rel_paths) {
    SourceFile f;
    std::string error;
    EXPECT_TRUE(LoadSourceFile(LINT_FIXTURE_DIR, rel, &f, &error)) << error;
    files.push_back(std::move(f));
  }
  auto rules = BuildAllRules();
  return RunLint(files, rules, {});
}

std::map<std::string, int> UnwaivedByRule(const LintResult& result) {
  std::map<std::string, int> counts;
  for (const Finding& f : result.findings) {
    if (!f.waived) ++counts[f.rule_id];
  }
  return counts;
}

struct RuleFixture {
  std::string rule;
  std::string bad;
  std::string good;
};

const RuleFixture kFixtures[] = {
    {"R1", "src/ch/bad_r1.cc", "src/ch/good_r1.cc"},
    {"R2", "src/myindex/bad_r2.h", "src/myindex/good_r2.h"},
    {"R3", "src/myindex/bad_r3.h", "src/myindex/good_r3.h"},
    {"R4", "src/server2/bad_r4.cc", "src/server2/good_r4.cc"},
    {"R5", "src/workload/bad_r5.cc", "src/workload/good_r5.cc"},
    {"R6", "src/engine2/bad_r6.cc", "src/engine2/good_r6.cc"},
    {"R7", "src/include/bad_r7.h", "src/include/good_r7.h"},
    {"R8", "src/obs/bad_r8.cc", "src/obs/good_r8.cc"},
    {"R9", "src/poi/bad_r9.cc", "src/poi/good_r9.cc"},
    {"R10", "src/obs/bad_r10.h", "src/obs/good_r10.h"},
    {"R11", "src/ch/bad_r11.cc", "src/ch/good_r11.cc"},
    {"R12", "src/server/wire_bad_r12.cc", "src/server/wire_good_r12.cc"},
};

TEST(LintRules, EachBadFixtureIsFlaggedByItsRule) {
  for (const RuleFixture& fx : kFixtures) {
    LintResult result = LintFiles({fx.bad});
    auto counts = UnwaivedByRule(result);
    EXPECT_GE(counts[fx.rule], 1)
        << fx.bad << " should trigger " << fx.rule;
    // The bad fixture triggers only its own rule — findings from other
    // rules would mean the fixtures overlap and the per-rule exit-code
    // acceptance criterion is meaningless.
    for (const auto& [rule, n] : counts) {
      EXPECT_EQ(rule, fx.rule) << fx.bad << " also triggered " << rule;
      EXPECT_GE(n, 1);
    }
  }
}

TEST(LintRules, EachGoodFixtureIsClean) {
  for (const RuleFixture& fx : kFixtures) {
    LintResult result = LintFiles({fx.good});
    EXPECT_EQ(result.UnwaivedCount(), 0)
        << fx.good << " should be clean; first finding: "
        << (result.findings.empty() ? "(none)"
                                    : result.findings[0].message);
  }
}

TEST(LintRules, BadR5FlagsEveryNondeterminismKind) {
  LintResult result = LintFiles({"src/workload/bad_r5.cc"});
  // rand(), default-constructed mt19937, and time(nullptr) are three
  // distinct findings.
  EXPECT_GE(result.UnwaivedCount(), 3);
}

TEST(LintRules, BadR9FlagsEveryNondeterminismKindInPoiCode) {
  LintResult result = LintFiles({"src/poi/bad_r9.cc"});
  // rand(), default-constructed mt19937, and time(nullptr) — flagged by
  // R9 (the fixture lives outside R5's subtree, so R5 must not co-fire;
  // EachBadFixtureIsFlaggedByItsRule pins that).
  EXPECT_GE(result.UnwaivedCount(), 3);
}

TEST(LintRules, BadR7FlagsBothBitsAndUsingNamespace) {
  LintResult result = LintFiles({"src/include/bad_r7.h"});
  EXPECT_EQ(result.UnwaivedCount(), 2);
}

TEST(LintRules, BadR8FlagsEveryNonMonotonicClockKind) {
  LintResult result = LintFiles({"src/obs/bad_r8.cc"});
  // system_clock, gettimeofday, and high_resolution_clock are three
  // distinct findings (the comment mentions of the banned words are
  // stripped before scanning).
  EXPECT_GE(result.UnwaivedCount(), 3);
}

TEST(LintRules, BadR10FlagsEveryLockDisciplineBreak) {
  LintResult result = LintFiles({"src/obs/bad_r10.h"});
  // A raw std::mutex member, a GUARDED_BY naming a nonexistent mutex,
  // and a Mutex member guarding no field are three distinct findings.
  EXPECT_EQ(result.UnwaivedCount(), 3);
}

TEST(LintRules, BadR11FlagsEveryAllocationKind) {
  LintResult result = LintFiles({"src/ch/bad_r11.cc"});
  // make_unique, a per-iteration std::function, and an unreserved
  // push_back are three distinct findings.
  EXPECT_EQ(result.UnwaivedCount(), 3);
}

TEST(LintRules, BadR12FlagsEveryUncheckedReadKind) {
  LintResult result = LintFiles({"src/server/wire_bad_r12.cc"});
  // The unchecked memcpy, its .data() arithmetic, and the unchecked
  // buffer subscript each produce a finding.
  EXPECT_EQ(result.UnwaivedCount(), 3);
}

TEST(LintWaivers, ReasonedWaiverSuppressesAndIsCounted) {
  LintResult result = LintFiles({"waivers/waived.cc"});
  EXPECT_EQ(result.UnwaivedCount(), 0);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_TRUE(result.findings[0].waived);
  EXPECT_EQ(result.findings[0].rule_id, "R4");
  EXPECT_NE(result.findings[0].waiver_reason.find("joins the thread"),
            std::string::npos);
  EXPECT_EQ(result.waivers_used, 1);
  EXPECT_EQ(result.waivers_unused, 0);
}

TEST(LintWaivers, HandshakeMutexWaiverSuppressesR10) {
  // The drain_mu_ pattern: a mutex that only orders a sleep/notify
  // handshake around an atomic predicate carries a reasoned waiver.
  LintResult result = LintFiles({"src/obs/waived_r10.h"});
  EXPECT_EQ(result.UnwaivedCount(), 0);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_TRUE(result.findings[0].waived);
  EXPECT_EQ(result.findings[0].rule_id, "R10");
  EXPECT_NE(result.findings[0].waiver_reason.find("handshake-only"),
            std::string::npos);
  EXPECT_EQ(result.waivers_used, 1);
}

TEST(LintWaivers, WaiverWithoutReasonIsItselfAFinding) {
  LintResult result = LintFiles({"waivers/bad_waiver.cc"});
  auto counts = UnwaivedByRule(result);
  EXPECT_EQ(counts["W1"], 1) << "bare allow(R4) must be flagged";
  EXPECT_EQ(counts["R4"], 1) << "a reasonless waiver must not suppress";
  EXPECT_EQ(result.waivers_used, 0);
}

TEST(LintWaivers, WaiverForWrongRuleDoesNotSuppress) {
  LintResult result = LintFiles({"waivers/wrong_rule_waiver.cc"});
  auto counts = UnwaivedByRule(result);
  EXPECT_EQ(counts["R4"], 1);
  EXPECT_EQ(result.waivers_used, 0);
  EXPECT_EQ(result.waivers_unused, 1) << "unused waivers are reported";
}

// --- binary acceptance: exit codes and JSON output -----------------------

int RunBinary(const std::string& args) {
  const std::string cmd =
      std::string(LINT_BINARY) + " " + args + " > /dev/null 2>&1";
  int status = std::system(cmd.c_str());
  return WEXITSTATUS(status);
}

TEST(LintBinary, ExitsNonzeroOnEachBadFixture) {
  for (const RuleFixture& fx : kFixtures) {
    EXPECT_EQ(RunBinary(std::string("--root ") + LINT_FIXTURE_DIR + " " +
                        fx.bad),
              1)
        << fx.bad;
  }
}

TEST(LintBinary, ExitsZeroOnGoodFixtures) {
  std::string args = std::string("--root ") + LINT_FIXTURE_DIR;
  for (const RuleFixture& fx : kFixtures) args += " " + fx.good;
  EXPECT_EQ(RunBinary(args), 0);
}

TEST(LintBinary, RepositoryTreeIsCleanWithReasonedWaivers) {
  // The acceptance gate check.sh runs: the real tree lints clean.
  EXPECT_EQ(RunBinary(std::string("--root ") + ROADNET_REPO_ROOT), 0);
}

TEST(LintBinary, JsonFindingsAreWritten) {
  const std::string json = ::testing::TempDir() + "/lint_findings.jsonl";
  EXPECT_EQ(RunBinary(std::string("--root ") + LINT_FIXTURE_DIR +
                      " --json " + json + " waivers/waived.cc"),
            0);
  std::vector<SourceFile> unused;
  // Read the JSON back coarsely: it must mention the rule and the file.
  FILE* f = std::fopen(json.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  EXPECT_NE(content.find("\"rule\":\"R4\""), std::string::npos);
  EXPECT_NE(content.find("\"waived\":true"), std::string::npos);
  EXPECT_NE(content.find("\"rule\":\"summary\""), std::string::npos);
}

TEST(LintBinary, JsonRoundTripsThroughSchemaValidator) {
  // Findings from the new-generation rules (R10..R12, waived and not)
  // must satisfy the JSONL schema scripts/validate_metrics.py enforces.
  const std::string json = ::testing::TempDir() + "/lint_r10_r12.jsonl";
  EXPECT_EQ(RunBinary(std::string("--root ") + LINT_FIXTURE_DIR + " --json " +
                      json +
                      " src/obs/bad_r10.h src/ch/bad_r11.cc"
                      " src/server/wire_bad_r12.cc src/obs/waived_r10.h"),
            1);
  const std::string cmd = std::string("python3 ") + ROADNET_REPO_ROOT +
                          "/scripts/validate_metrics.py " + json +
                          " > /dev/null 2>&1";
  EXPECT_EQ(WEXITSTATUS(std::system(cmd.c_str())), 0)
      << "lint JSONL failed schema validation";
}

}  // namespace
}  // namespace roadnet::lint
